package verbs

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simnet"
)

// testConfig is a simple cost model: every knob distinct so mistakes in
// accounting show up as wrong totals.
func testConfig() Config {
	return Config{
		PostOverhead:      10,
		SendProc:          100,
		RecvProc:          100,
		RDMAProc:          150,
		PollOverhead:      20,
		InterruptOverhead: 500,
		RegBase:           1000,
		RegPerByte:        0.5,
		HeaderBytes:       30,
		MTU:               2048,
		InlineMax:         128,
	}
}

type pair struct {
	nw       *simnet.Network
	fab      *simnet.Fabric
	cm       *CM
	cliNode  *simnet.Node
	srvNode  *simnet.Node
	cliHCA   *HCA
	srvHCA   *HCA
	cliQP    *QP
	srvQP    *QP
	cliSend  *CQ
	cliRecv  *CQ
	srvSend  *CQ
	srvRecv  *CQ
	cliClock *simnet.VClock
	srvClock *simnet.VClock
	cliPD    *PD
	srvPD    *PD
}

// newPair builds two nodes with a connected RC queue pair, with nRecv
// receive buffers of bufSize pre-posted on each side.
func newPair(t *testing.T, nRecv, bufSize int) *pair {
	t.Helper()
	p := &pair{}
	p.nw = simnet.NewNetwork()
	p.cliNode = p.nw.AddNode("client")
	p.srvNode = p.nw.AddNode("server")
	p.fab = p.nw.AddFabric(simnet.FabricSpec{
		Name:            "ib",
		LinkBytesPerSec: 1e9,
		Propagation:     200,
		SwitchDelay:     100,
	})
	cfg := testConfig()
	p.cliHCA = NewHCA(p.cliNode, p.fab, cfg)
	p.srvHCA = NewHCA(p.srvNode, p.fab, cfg)
	p.cm = NewCM(p.fab)
	p.cliClock = simnet.NewVClock(0)
	p.srvClock = simnet.NewVClock(0)
	p.cliPD = p.cliHCA.AllocPD()
	p.srvPD = p.srvHCA.AllocPD()

	p.cliSend, p.cliRecv = p.cliHCA.CreateCQ(), p.cliHCA.CreateCQ()
	p.srvSend, p.srvRecv = p.srvHCA.CreateCQ(), p.srvHCA.CreateCQ()
	p.cliQP = p.cliHCA.NewQP(RC, p.cliSend, p.cliRecv)
	p.srvQP = p.srvHCA.NewQP(RC, p.srvSend, p.srvRecv)

	lis, err := p.cm.Listen("memcached")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cliQP.Modify(StateInit); err != nil {
		t.Fatal(err)
	}
	if err := p.srvQP.Modify(StateInit); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nRecv; i++ {
		if err := p.cliQP.PostRecv(RecvWR{ID: uint64(1000 + i), Buf: make([]byte, bufSize)}); err != nil {
			t.Fatal(err)
		}
		if err := p.srvQP.PostRecv(RecvWR{ID: uint64(2000 + i), Buf: make([]byte, bufSize)}); err != nil {
			t.Fatal(err)
		}
	}
	accepted := make(chan error, 1)
	go func() {
		req, ok := lis.Accept(p.srvClock)
		if !ok {
			accepted <- ErrListenerClosed
			return
		}
		accepted <- req.Accept(p.srvQP, p.srvClock)
	}()
	if _, err := p.cm.Connect(p.cliQP, p.srvNode, "memcached", p.cliClock, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	lis.Close()
	return p
}

func TestQPStateMachine(t *testing.T) {
	p := &pair{}
	p.nw = simnet.NewNetwork()
	n := p.nw.AddNode("n")
	f := p.nw.AddFabric(simnet.FabricSpec{Name: "ib", LinkBytesPerSec: 1e9})
	h := NewHCA(n, f, testConfig())
	cq := h.CreateCQ()
	qp := h.NewQP(RC, cq, cq)

	if qp.State() != StateReset {
		t.Fatalf("initial state = %v", qp.State())
	}
	// Skipping INIT is illegal.
	if err := qp.Modify(StateRTR); err != ErrBadState {
		t.Fatalf("RESET->RTR = %v, want ErrBadState", err)
	}
	for _, st := range []QPState{StateInit, StateRTR, StateRTS} {
		if err := qp.Modify(st); err != nil {
			t.Fatalf("to %v: %v", st, err)
		}
	}
	// Going backwards is illegal.
	if err := qp.Modify(StateInit); err != ErrBadState {
		t.Fatalf("RTS->INIT = %v, want ErrBadState", err)
	}
	// Any state can move to ERR, and ERR recycles through RESET.
	if err := qp.Modify(StateErr); err != nil {
		t.Fatal(err)
	}
	if err := qp.Modify(StateReset); err != nil {
		t.Fatal(err)
	}
	if err := qp.Modify(StateInit); err != nil {
		t.Fatal(err)
	}
}

func TestPostRecvRequiresInit(t *testing.T) {
	nw := simnet.NewNetwork()
	n := nw.AddNode("n")
	f := nw.AddFabric(simnet.FabricSpec{Name: "ib", LinkBytesPerSec: 1e9})
	h := NewHCA(n, f, testConfig())
	cq := h.CreateCQ()
	qp := h.NewQP(RC, cq, cq)
	if err := qp.PostRecv(RecvWR{Buf: make([]byte, 8)}); err != ErrBadState {
		t.Fatalf("PostRecv in RESET = %v, want ErrBadState", err)
	}
}

func TestPostSendRequiresRTS(t *testing.T) {
	nw := simnet.NewNetwork()
	n := nw.AddNode("n")
	f := nw.AddFabric(simnet.FabricSpec{Name: "ib", LinkBytesPerSec: 1e9})
	h := NewHCA(n, f, testConfig())
	cq := h.CreateCQ()
	qp := h.NewQP(RC, cq, cq)
	clk := simnet.NewVClock(0)
	if err := qp.PostSend(clk, SendWR{Op: OpSend, Local: []byte("x")}); err != ErrBadState {
		t.Fatalf("PostSend in RESET = %v, want ErrBadState", err)
	}
}

func TestMRRegistration(t *testing.T) {
	nw := simnet.NewNetwork()
	n := nw.AddNode("n")
	f := nw.AddFabric(simnet.FabricSpec{Name: "ib", LinkBytesPerSec: 1e9})
	h := NewHCA(n, f, testConfig())
	pd := h.AllocPD()
	clk := simnet.NewVClock(0)

	buf := make([]byte, 4096)
	mr, err := h.RegisterMR(pd, buf, clk)
	if err != nil {
		t.Fatal(err)
	}
	// Registration cost: RegBase 1000 + 4096*0.5 = 3048.
	if clk.Now() != 3048 {
		t.Fatalf("registration cost = %v, want 3048", clk.Now())
	}
	if mr.Len() != 4096 || mr.LKey() == 0 || mr.RKey() == 0 || mr.VA() == 0 {
		t.Fatalf("bad MR: %+v", mr)
	}

	// Addr of a sub-slice.
	sub := buf[100:200]
	addr, err := mr.Addr(sub)
	if err != nil {
		t.Fatal(err)
	}
	if addr != mr.VA()+100 {
		t.Fatalf("Addr = %v, want %v", addr, mr.VA()+100)
	}
	// Foreign buffer is rejected.
	if _, err := mr.Addr(make([]byte, 10)); err != ErrOutOfBounds {
		t.Fatalf("foreign Addr err = %v, want ErrOutOfBounds", err)
	}
	// Range checks.
	if _, err := mr.rdmaRange(mr.VA(), 4096); err != nil {
		t.Fatalf("full range: %v", err)
	}
	if _, err := mr.rdmaRange(mr.VA()+4000, 200); err != ErrOutOfBounds {
		t.Fatalf("overflow range err = %v, want ErrOutOfBounds", err)
	}
	if _, err := mr.rdmaRange(mr.VA()-1, 1); err != ErrOutOfBounds {
		t.Fatalf("before-start err = %v, want ErrOutOfBounds", err)
	}

	// Deregistration removes rkey visibility.
	h.DeregisterMR(mr)
	if _, ok := h.lookupMR(mr.RKey()); ok {
		t.Fatal("deregistered MR still visible")
	}
}

func TestMRPDMismatch(t *testing.T) {
	nw := simnet.NewNetwork()
	n := nw.AddNode("n")
	m := nw.AddNode("m")
	f := nw.AddFabric(simnet.FabricSpec{Name: "ib", LinkBytesPerSec: 1e9})
	h1 := NewHCA(n, f, testConfig())
	h2 := NewHCA(m, f, testConfig())
	pd2 := h2.AllocPD()
	if _, err := h1.RegisterMR(pd2, make([]byte, 8), nil); err != ErrPDMismatch {
		t.Fatalf("cross-HCA PD err = %v, want ErrPDMismatch", err)
	}
	if _, err := h1.RegisterMR(nil, make([]byte, 8), nil); err != ErrPDMismatch {
		t.Fatalf("nil PD err = %v, want ErrPDMismatch", err)
	}
}

func TestSendRecvRoundtrip(t *testing.T) {
	p := newPair(t, 4, 1024)
	payload := []byte("hello, verbs")

	post := p.cliClock.Now()
	if err := p.cliQP.PostSend(p.cliClock, SendWR{ID: 7, Op: OpSend, Local: payload, Imm: 99}); err != nil {
		t.Fatal(err)
	}
	if p.cliClock.Now() != post+10 {
		t.Fatalf("post charged %v, want PostOverhead=10", p.cliClock.Now()-post)
	}

	// Local send completion.
	swc, ok := p.cliSend.Wait(p.cliClock)
	if !ok || swc.Status != StatusSuccess || swc.ID != 7 || swc.Op != OpSend {
		t.Fatalf("send WC = %+v ok=%v", swc, ok)
	}

	// Remote receive completion carries the data and immediate.
	rwc, ok := p.srvRecv.Wait(p.srvClock)
	if !ok || rwc.Status != StatusSuccess || rwc.Op != OpRecv {
		t.Fatalf("recv WC = %+v ok=%v", rwc, ok)
	}
	if rwc.ByteLen != len(payload) || rwc.Imm != 99 || rwc.SrcQPN != p.cliQP.QPN() {
		t.Fatalf("recv WC fields = %+v", rwc)
	}
	if rwc.Time <= post {
		t.Fatalf("receive did not advance time: %v <= %v", rwc.Time, post)
	}
	if p.srvClock.Now() < rwc.Time {
		t.Fatalf("server clock %v behind completion %v", p.srvClock.Now(), rwc.Time)
	}
}

func TestSendDataIntegrityProperty(t *testing.T) {
	p := newPair(t, 64, 4096)
	f := func(data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		if err := p.cliQP.PostSend(p.cliClock, SendWR{ID: 1, Op: OpSend, Local: data}); err != nil {
			return false
		}
		if _, ok := p.cliSend.Wait(p.cliClock); !ok {
			return false
		}
		wc, ok := p.srvRecv.Wait(p.srvClock)
		if !ok || wc.Status != StatusSuccess || wc.ByteLen != len(data) {
			return false
		}
		// Refill the consumed buffer and check content via a fresh recv:
		// we can't see the buffer from the WC alone, so instead resend
		// below; content equality is validated in TestRecvBufferContent.
		return p.srvQP.PostRecv(RecvWR{Buf: make([]byte, 4096)}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRecvBufferContent(t *testing.T) {
	p := newPair(t, 0, 0)
	buf := make([]byte, 64)
	if err := p.srvQP.PostRecv(RecvWR{ID: 5, Buf: buf}); err != nil {
		t.Fatal(err)
	}
	msg := []byte("payload-bytes-land-here")
	if err := p.cliQP.PostSend(p.cliClock, SendWR{Op: OpSend, Local: msg}); err != nil {
		t.Fatal(err)
	}
	wc, ok := p.srvRecv.Wait(p.srvClock)
	if !ok || wc.ID != 5 {
		t.Fatalf("wc = %+v", wc)
	}
	if !bytes.Equal(buf[:wc.ByteLen], msg) {
		t.Fatalf("buffer = %q, want %q", buf[:wc.ByteLen], msg)
	}
}

func TestRNRWhenNoRecvPosted(t *testing.T) {
	p := newPair(t, 0, 0)
	if err := p.cliQP.PostSend(p.cliClock, SendWR{Op: OpSend, Local: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	wc, ok := p.cliSend.Wait(p.cliClock)
	if !ok || wc.Status != StatusRNRRetryExceeded {
		t.Fatalf("wc = %+v, want RNR", wc)
	}
}

func TestRecvBufferTooSmall(t *testing.T) {
	p := newPair(t, 0, 0)
	if err := p.srvQP.PostRecv(RecvWR{ID: 9, Buf: make([]byte, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := p.cliQP.PostSend(p.cliClock, SendWR{Op: OpSend, Local: []byte("too big for four")}); err != nil {
		t.Fatal(err)
	}
	swc, _ := p.cliSend.Wait(p.cliClock)
	if swc.Status != StatusRemoteError {
		t.Fatalf("sender status = %v, want remote-error", swc.Status)
	}
	rwc, _ := p.srvRecv.Wait(p.srvClock)
	if rwc.Status != StatusRemoteError || rwc.ID != 9 {
		t.Fatalf("receiver wc = %+v", rwc)
	}
}

func TestInlineLimit(t *testing.T) {
	p := newPair(t, 1, 1024)
	big := make([]byte, 256) // InlineMax is 128
	if err := p.cliQP.PostSend(p.cliClock, SendWR{Op: OpSend, Local: big, Inline: true}); err != ErrInlineLimit {
		t.Fatalf("err = %v, want ErrInlineLimit", err)
	}
	small := make([]byte, 64)
	if err := p.cliQP.PostSend(p.cliClock, SendWR{Op: OpSend, Local: small, Inline: true}); err != nil {
		t.Fatalf("inline small: %v", err)
	}
}

func TestRDMARead(t *testing.T) {
	p := newPair(t, 1, 1024)
	// Server exposes a registered region with known content.
	srvBuf := make([]byte, 1024)
	copy(srvBuf[128:], []byte("remote-data-to-pull"))
	srvMR, err := p.srvHCA.RegisterMR(p.srvPD, srvBuf, nil)
	if err != nil {
		t.Fatal(err)
	}
	cliBuf := make([]byte, 19)
	cliMR, err := p.cliHCA.RegisterMR(p.cliPD, cliBuf, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := p.cliClock.Now()
	err = p.cliQP.PostSend(p.cliClock, SendWR{
		ID: 11, Op: OpRDMARead,
		Local: cliBuf, LocalMR: cliMR,
		RemoteAddr: srvMR.VA() + 128, RKey: srvMR.RKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, ok := p.cliSend.Wait(p.cliClock)
	if !ok || wc.Status != StatusSuccess || wc.Op != OpRDMARead || wc.ID != 11 {
		t.Fatalf("wc = %+v", wc)
	}
	if string(cliBuf) != "remote-data-to-pull" {
		t.Fatalf("pulled %q", cliBuf)
	}
	// A read is a full round trip: strictly more than one-way time.
	if wc.Time <= before+300 {
		t.Fatalf("RDMA read completed implausibly fast: %v", wc.Time-before)
	}
	// No remote software involvement: server recv CQ must stay empty.
	if p.srvRecv.Len() != 0 {
		t.Fatal("RDMA read generated a remote completion")
	}
}

func TestRDMAWrite(t *testing.T) {
	p := newPair(t, 1, 1024)
	srvBuf := make([]byte, 256)
	srvMR, err := p.srvHCA.RegisterMR(p.srvPD, srvBuf, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("pushed-by-rdma-write")
	err = p.cliQP.PostSend(p.cliClock, SendWR{
		Op: OpRDMAWrite, Local: data,
		RemoteAddr: srvMR.VA() + 32, RKey: srvMR.RKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, ok := p.cliSend.Wait(p.cliClock)
	if !ok || wc.Status != StatusSuccess {
		t.Fatalf("wc = %+v", wc)
	}
	if !bytes.Equal(srvBuf[32:32+len(data)], data) {
		t.Fatalf("remote buffer = %q", srvBuf[32:32+len(data)])
	}
}

func TestRDMABadKey(t *testing.T) {
	p := newPair(t, 1, 1024)
	cliBuf := make([]byte, 16)
	cliMR, _ := p.cliHCA.RegisterMR(p.cliPD, cliBuf, nil)
	err := p.cliQP.PostSend(p.cliClock, SendWR{
		Op: OpRDMARead, Local: cliBuf, LocalMR: cliMR,
		RemoteAddr: 0x9999, RKey: 424242,
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, _ := p.cliSend.Wait(p.cliClock)
	if wc.Status != StatusRemoteError {
		t.Fatalf("status = %v, want remote-error", wc.Status)
	}
}

func TestRDMAOutOfBounds(t *testing.T) {
	p := newPair(t, 1, 1024)
	srvBuf := make([]byte, 64)
	srvMR, _ := p.srvHCA.RegisterMR(p.srvPD, srvBuf, nil)
	cliBuf := make([]byte, 128) // larger than the remote region
	cliMR, _ := p.cliHCA.RegisterMR(p.cliPD, cliBuf, nil)
	err := p.cliQP.PostSend(p.cliClock, SendWR{
		Op: OpRDMARead, Local: cliBuf, LocalMR: cliMR,
		RemoteAddr: srvMR.VA(), RKey: srvMR.RKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, _ := p.cliSend.Wait(p.cliClock)
	if wc.Status != StatusRemoteError {
		t.Fatalf("status = %v, want remote-error", wc.Status)
	}
}

func TestTransportErrorOnFailedPeer(t *testing.T) {
	p := newPair(t, 1, 1024)
	p.srvNode.Fail()
	if err := p.cliQP.PostSend(p.cliClock, SendWR{Op: OpSend, Local: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	wc, _ := p.cliSend.Wait(p.cliClock)
	if wc.Status != StatusTransportError {
		t.Fatalf("status = %v, want transport-error", wc.Status)
	}
}

func TestUDSendAndDrop(t *testing.T) {
	nw := simnet.NewNetwork()
	a := nw.AddNode("a")
	b := nw.AddNode("b")
	f := nw.AddFabric(simnet.FabricSpec{Name: "ib", LinkBytesPerSec: 1e9, Propagation: 100})
	ha := NewHCA(a, f, testConfig())
	hb := NewHCA(b, f, testConfig())
	aclk, bclk := simnet.NewVClock(0), simnet.NewVClock(0)

	acq := ha.CreateCQ()
	bcqS, bcqR := hb.CreateCQ(), hb.CreateCQ()
	qa := ha.NewQP(UD, acq, acq)
	qb := hb.NewQP(UD, bcqS, bcqR)
	for _, qp := range []*QP{qa, qb} {
		for _, st := range []QPState{StateInit, StateRTR, StateRTS} {
			if err := qp.Modify(st); err != nil {
				t.Fatal(err)
			}
		}
	}
	ah := &AddressHandle{Target: hb, QPN: qb.QPN()}

	// No receive posted: datagram silently dropped, sender still succeeds.
	if err := qa.PostSend(aclk, SendWR{Op: OpSend, Local: []byte("lost"), Dest: ah}); err != nil {
		t.Fatal(err)
	}
	wc, _ := acq.Wait(aclk)
	if wc.Status != StatusSuccess {
		t.Fatalf("UD loss should be silent, got %v", wc.Status)
	}
	if bcqR.Len() != 0 {
		t.Fatal("dropped datagram generated a receive completion")
	}

	// With a receive posted, data lands.
	buf := make([]byte, 64)
	if err := qb.PostRecv(RecvWR{ID: 3, Buf: buf}); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(aclk, SendWR{Op: OpSend, Local: []byte("found"), Dest: ah}); err != nil {
		t.Fatal(err)
	}
	if _, ok := acq.Wait(aclk); !ok {
		t.Fatal("no send completion")
	}
	rwc, ok := bcqR.Wait(bclk)
	if !ok || rwc.Status != StatusSuccess || string(buf[:rwc.ByteLen]) != "found" {
		t.Fatalf("rwc = %+v buf=%q", rwc, buf[:rwc.ByteLen])
	}

	// UD datagrams are limited to the MTU.
	big := make([]byte, 4096)
	if err := qa.PostSend(aclk, SendWR{Op: OpSend, Local: big, Dest: ah}); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// UD sends require an address handle.
	if err := qa.PostSend(aclk, SendWR{Op: OpSend, Local: []byte("x")}); err != ErrNoAddress {
		t.Fatalf("err = %v, want ErrNoAddress", err)
	}
	// UD cannot do RDMA.
	if err := qa.PostSend(aclk, SendWR{Op: OpRDMARead, Local: buf, Dest: ah}); err != ErrBadState {
		t.Fatalf("err = %v, want ErrBadState", err)
	}
}

func TestSRQSharedAcrossQPs(t *testing.T) {
	p := newPair(t, 0, 0)
	// New server-side QPs draw from one SRQ.
	srq := p.srvHCA.CreateSRQ()
	scq := p.srvHCA.CreateCQ()
	q1 := p.srvHCA.NewQPWithSRQ(RC, scq, scq, srq)
	q2 := p.srvHCA.NewQPWithSRQ(RC, scq, scq, srq)
	for _, qp := range []*QP{q1, q2} {
		for _, st := range []QPState{StateInit, StateRTR, StateRTS} {
			if err := qp.Modify(st); err != nil {
				t.Fatal(err)
			}
		}
	}
	bufs := [][]byte{make([]byte, 64), make([]byte, 64)}
	if err := srq.Post(RecvWR{ID: 1, Buf: bufs[0]}); err != nil {
		t.Fatal(err)
	}
	if err := srq.Post(RecvWR{ID: 2, Buf: bufs[1]}); err != nil {
		t.Fatal(err)
	}
	if srq.Len() != 2 {
		t.Fatalf("SRQ len = %d", srq.Len())
	}
	// Posting to a QP with an SRQ attached routes to the shared ring.
	if err := q1.PostRecv(RecvWR{ID: 3, Buf: make([]byte, 64)}); err != nil {
		t.Fatal(err)
	}
	if srq.Len() != 3 {
		t.Fatalf("SRQ len after QP-routed post = %d, want 3", srq.Len())
	}
	if _, ok := srq.pop(); !ok {
		t.Fatal("pop failed")
	}
	// Two different senders each consume one shared buffer.
	q1.setRemote(p.cliQP) // wiring shortcut for the test
	q2.setRemote(p.cliQP)
	p.cliQP.setRemote(q1)
	if err := p.cliQP.PostSend(p.cliClock, SendWR{Op: OpSend, Local: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	p.cliQP.setRemote(q2)
	if err := p.cliQP.PostSend(p.cliClock, SendWR{Op: OpSend, Local: []byte("two")}); err != nil {
		t.Fatal(err)
	}
	if srq.Len() != 0 {
		t.Fatalf("SRQ len after sends = %d", srq.Len())
	}
	seen := map[uint32]bool{}
	srvClk := simnet.NewVClock(0)
	for i := 0; i < 2; i++ {
		wc, ok := scq.Wait(srvClk)
		if !ok || wc.Status != StatusSuccess {
			t.Fatalf("wc = %+v", wc)
		}
		seen[wc.QPN] = true
	}
	if !seen[q1.QPN()] || !seen[q2.QPN()] {
		t.Fatalf("completions did not span both QPs: %v", seen)
	}
}

// TestSRQRingFull pins the ring-full error path: an SRQ has a hard
// capacity, Post beyond it must fail with ErrSRQFull and leave the ring
// unchanged, and popping a buffer must make room again.
func TestSRQRingFull(t *testing.T) {
	p := newPair(t, 0, 0)
	srq := p.srvHCA.CreateSRQSized(2)
	if srq.Cap() != 2 {
		t.Fatalf("Cap() = %d, want 2", srq.Cap())
	}
	for i := 0; i < 2; i++ {
		if err := srq.Post(RecvWR{ID: uint64(i), Buf: make([]byte, 16)}); err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
	}
	if err := srq.Post(RecvWR{ID: 9, Buf: make([]byte, 16)}); err != ErrSRQFull {
		t.Fatalf("post beyond cap: err = %v, want ErrSRQFull", err)
	}
	if srq.Len() != 2 {
		t.Fatalf("failed post changed ring: len = %d", srq.Len())
	}
	// The QP-routed path surfaces the same error.
	scq := p.srvHCA.CreateCQ()
	qp := p.srvHCA.NewQPWithSRQ(RC, scq, scq, srq)
	if err := qp.Modify(StateInit); err != nil {
		t.Fatal(err)
	}
	if err := qp.PostRecv(RecvWR{ID: 10, Buf: make([]byte, 16)}); err != ErrSRQFull {
		t.Fatalf("QP PostRecv on full SRQ: err = %v, want ErrSRQFull", err)
	}
	if _, ok := srq.pop(); !ok {
		t.Fatal("pop failed")
	}
	if err := srq.Post(RecvWR{ID: 11, Buf: make([]byte, 16)}); err != nil {
		t.Fatalf("post after pop: %v", err)
	}
	// Default-capacity constructor still works for existing callers.
	if c := p.srvHCA.CreateSRQ().Cap(); c != DefaultSRQCap {
		t.Fatalf("CreateSRQ().Cap() = %d, want %d", c, DefaultSRQCap)
	}
}

// TestSRQZeroCredit is the zero-credit edge: an RC send into a QP whose
// SRQ holds no buffers must come back as RNR retry exhaustion (receiver
// not ready), not hang and not drop, and a reposted credit must let the
// next send land.
func TestSRQZeroCredit(t *testing.T) {
	p := newPair(t, 0, 0)
	srq := p.srvHCA.CreateSRQSized(4)
	scq := p.srvHCA.CreateCQ()
	qp := p.srvHCA.NewQPWithSRQ(RC, scq, scq, srq)
	for _, st := range []QPState{StateInit, StateRTR, StateRTS} {
		if err := qp.Modify(st); err != nil {
			t.Fatal(err)
		}
	}
	qp.setRemote(p.cliQP)
	p.cliQP.setRemote(qp)

	// No credits posted: the reliable sender sees RNR exhaustion.
	if err := p.cliQP.PostSend(p.cliClock, SendWR{ID: 1, Op: OpSend, Local: []byte("starved")}); err != nil {
		t.Fatal(err)
	}
	wc, ok := p.cliSend.Wait(p.cliClock)
	if !ok || wc.Status != StatusRNRRetryExceeded {
		t.Fatalf("send into zero-credit SRQ: wc = %+v, want StatusRNRRetryExceeded", wc)
	}

	// One credit reposted: the retry lands.
	buf := make([]byte, 64)
	if err := srq.Post(RecvWR{ID: 2, Buf: buf}); err != nil {
		t.Fatal(err)
	}
	if err := p.cliQP.PostSend(p.cliClock, SendWR{ID: 3, Op: OpSend, Local: []byte("served")}); err != nil {
		t.Fatal(err)
	}
	wc, ok = p.cliSend.Wait(p.cliClock)
	if !ok || wc.Status != StatusSuccess {
		t.Fatalf("send after repost: wc = %+v", wc)
	}
	srvClk := simnet.NewVClock(0)
	rwc, ok := scq.Wait(srvClk)
	if !ok || rwc.Status != StatusSuccess || string(buf[:rwc.ByteLen]) != "served" {
		t.Fatalf("recv wc = %+v buf=%q", rwc, buf[:rwc.ByteLen])
	}
	if srq.Len() != 0 {
		t.Fatalf("SRQ len = %d after consume", srq.Len())
	}
}

func TestQPDestroyFlushes(t *testing.T) {
	p := newPair(t, 3, 64)
	p.srvQP.Destroy()
	srvClk := simnet.NewVClock(0)
	for i := 0; i < 3; i++ {
		wc, ok := p.srvRecv.Wait(srvClk)
		if !ok || wc.Status != StatusFlushed {
			t.Fatalf("wc = %+v", wc)
		}
	}
	if _, ok := p.srvHCA.lookupQP(p.srvQP.QPN()); ok {
		t.Fatal("destroyed QP still registered")
	}
}

func TestCMRefusedAndDuplicate(t *testing.T) {
	p := newPair(t, 1, 64)
	qp := p.cliHCA.NewQP(RC, p.cliSend, p.cliRecv)
	if err := qp.Modify(StateInit); err != nil {
		t.Fatal(err)
	}
	if _, err := p.cm.Connect(qp, p.srvNode, "no-such-service", p.cliClock, time.Second); err != ErrRefused {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
	l1, err := p.cm.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	if _, err := p.cm.Listen("svc"); err != ErrDuplicateSvc {
		t.Fatalf("err = %v, want ErrDuplicateSvc", err)
	}
}

func TestCMConnectTimeout(t *testing.T) {
	p := newPair(t, 1, 64)
	lis, err := p.cm.Listen("slow")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	qp := p.cliHCA.NewQP(RC, p.cliSend, p.cliRecv)
	if err := qp.Modify(StateInit); err != nil {
		t.Fatal(err)
	}
	// Nobody accepts: the real-time cap fires.
	if _, err := p.cm.Connect(qp, p.srvNode, "slow", p.cliClock, 20*time.Millisecond); err != ErrConnectTimeout {
		t.Fatalf("err = %v, want ErrConnectTimeout", err)
	}
}

func TestCMReject(t *testing.T) {
	p := newPair(t, 1, 64)
	lis, err := p.cm.Listen("reject-me")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		req, ok := lis.Accept(p.srvClock)
		if ok {
			req.Reject(ErrRefused)
		}
	}()
	qp := p.cliHCA.NewQP(RC, p.cliSend, p.cliRecv)
	if err := qp.Modify(StateInit); err != nil {
		t.Fatal(err)
	}
	if _, err := p.cm.Connect(qp, p.srvNode, "reject-me", p.cliClock, time.Second); err != ErrRefused {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
}

func TestCQWaitDeadline(t *testing.T) {
	p := newPair(t, 1, 64)
	clk := simnet.NewVClock(0)
	// Nothing pending: virtual deadline reached via real cap.
	_, ok, timedOut := p.srvRecv.WaitDeadline(clk, 5000, 20*time.Millisecond)
	if ok || !timedOut {
		t.Fatalf("ok=%v timedOut=%v", ok, timedOut)
	}
	if clk.Now() != 5000 {
		t.Fatalf("clock = %v, want advanced to deadline 5000", clk.Now())
	}
	// A completion after the deadline is requeued, not consumed.
	if err := p.cliQP.PostSend(p.cliClock, SendWR{Op: OpSend, Local: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	early := simnet.NewVClock(0)
	_, ok, timedOut = p.srvRecv.WaitDeadline(early, 1, time.Second)
	if ok || !timedOut {
		t.Fatalf("pre-arrival deadline: ok=%v timedOut=%v", ok, timedOut)
	}
	if p.srvRecv.Len() != 1 {
		t.Fatal("completion was consumed despite missed deadline")
	}
	wc, ok, timedOut := p.srvRecv.WaitDeadline(early, 1<<40, time.Second)
	if !ok || timedOut || wc.Status != StatusSuccess {
		t.Fatalf("wc=%+v ok=%v timedOut=%v", wc, ok, timedOut)
	}
}

func TestCQEventModeCost(t *testing.T) {
	p := newPair(t, 2, 64)
	if err := p.cliQP.PostSend(p.cliClock, SendWR{Op: OpSend, Local: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	pollClk := simnet.NewVClock(0)
	wc, _ := p.srvRecv.Wait(pollClk)
	pollCost := pollClk.Now() - wc.Time

	if err := p.cliQP.PostSend(p.cliClock, SendWR{Op: OpSend, Local: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	p.srvRecv.UseEvents = true
	evClk := simnet.NewVClock(0)
	wc2, _ := p.srvRecv.Wait(evClk)
	evCost := evClk.Now() - wc2.Time
	if evCost <= pollCost {
		t.Fatalf("event cost %v should exceed poll cost %v", evCost, pollCost)
	}
}

func TestWireBytes(t *testing.T) {
	cfg := testConfig() // MTU 2048, header 30
	if got := wireBytes(0, cfg); got != 30 {
		t.Fatalf("empty = %d", got)
	}
	if got := wireBytes(100, cfg); got != 130 {
		t.Fatalf("one packet = %d, want 130", got)
	}
	if got := wireBytes(4096, cfg); got != 4096+2*30 {
		t.Fatalf("two packets = %d, want %d", got, 4096+60)
	}
	if got := wireBytes(4097, cfg); got != 4097+3*30 {
		t.Fatalf("three packets = %d, want %d", got, 4097+90)
	}
}

func TestStringers(t *testing.T) {
	if OpSend.String() != "SEND" || OpRDMARead.String() != "RDMA_READ" {
		t.Fatal("opcode strings")
	}
	if StatusSuccess.String() != "success" || StatusFlushed.String() != "flushed" {
		t.Fatal("status strings")
	}
	if StateRTS.String() != "RTS" || StateErr.String() != "ERR" {
		t.Fatal("state strings")
	}
	if RC.String() != "RC" || UD.String() != "UD" {
		t.Fatal("qptype strings")
	}
}

func TestHCAUtilization(t *testing.T) {
	p := newPair(t, 4, 1024)
	for i := 0; i < 3; i++ {
		if err := p.cliQP.PostSend(p.cliClock, SendWR{Op: OpSend, Local: []byte("tick")}); err != nil {
			t.Fatal(err)
		}
		if _, ok := p.cliSend.Wait(p.cliClock); !ok {
			t.Fatal("no completion")
		}
	}
	send, _ := p.cliHCA.Utilization()
	if send != 300 { // 3 sends × SendProc 100
		t.Fatalf("send busy = %v, want 300", send)
	}
	_, recv := p.srvHCA.Utilization()
	if recv != 300 {
		t.Fatalf("recv busy = %v, want 300", recv)
	}
}

// simnetClock and testRealCap are small helpers for auxiliary test
// goroutines.
func simnetClock() *simnet.VClock { return simnet.NewVClock(0) }

const testRealCap = 5 * time.Second

func TestCMTypeMismatchRejected(t *testing.T) {
	// An RC dialer must not be paired with a UD acceptor.
	p := newPair(t, 1, 64)
	lis, err := p.cm.Listen("mismatch")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		clk := simnetClock()
		req, ok := lis.Accept(clk)
		if !ok {
			return
		}
		cq := p.srvHCA.CreateCQ()
		udQP := p.srvHCA.NewQP(UD, cq, cq)
		if err := udQP.Modify(StateInit); err != nil {
			return
		}
		if err := req.Accept(udQP, clk); err != ErrBadState {
			t.Errorf("mismatched Accept err = %v, want ErrBadState", err)
		}
		req.Reject(ErrBadState)
	}()
	qp := p.cliHCA.NewQP(RC, p.cliSend, p.cliRecv)
	if err := qp.Modify(StateInit); err != nil {
		t.Fatal(err)
	}
	if _, err := p.cm.Connect(qp, p.srvNode, "mismatch", p.cliClock, testRealCap); err == nil {
		t.Fatal("mismatched transports should not connect")
	}
}

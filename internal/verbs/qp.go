package verbs

import (
	"sync"

	"repro/internal/simnet"
)

// QP is a queue pair: the verbs communication endpoint. An RC (reliable
// connected) QP is wired 1:1 to a peer QP by the connection manager; a
// UD (unreliable datagram) QP sends to any peer named by an address
// handle, with silent loss when the receiver has no buffer posted.
type QP struct {
	hca    *HCA
	typ    QPType
	qpn    uint32
	sendCQ *CQ
	recvCQ *CQ
	srq    *SRQ // optional shared receive queue

	mu     sync.Mutex
	state  QPState
	recvq  []RecvWR
	remote *QP // RC peer, set by the connection manager
}

// NewQP creates a queue pair in the RESET state.
func (h *HCA) NewQP(typ QPType, sendCQ, recvCQ *CQ) *QP {
	qp := &QP{hca: h, typ: typ, sendCQ: sendCQ, recvCQ: recvCQ, state: StateReset}
	qp.qpn = h.registerQP(qp)
	return qp
}

// NewQPWithSRQ creates a queue pair whose receives come from a shared
// receive queue (the MVAPICH-style scalability feature the paper's UCR
// inherits its buffer management from).
func (h *HCA) NewQPWithSRQ(typ QPType, sendCQ, recvCQ *CQ, srq *SRQ) *QP {
	qp := h.NewQP(typ, sendCQ, recvCQ)
	qp.srq = srq
	return qp
}

// QPN reports the queue pair number.
func (q *QP) QPN() uint32 { return q.qpn }

// Type reports RC or UD.
func (q *QP) Type() QPType { return q.typ }

// HCA reports the owning adapter.
func (q *QP) HCA() *HCA { return q.hca }

// State reports the current state.
func (q *QP) State() QPState {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.state
}

// Modify transitions the state machine, enforcing the legal bring-up
// order RESET→INIT→RTR→RTS (any state may move to ERR, and ERR→RESET
// recycles the QP).
func (q *QP) Modify(next QPState) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if next == StateErr {
		q.state = StateErr
		return nil
	}
	legal := map[QPState]QPState{
		StateInit:  StateReset,
		StateRTR:   StateInit,
		StateRTS:   StateRTR,
		StateReset: StateErr,
	}
	if want, ok := legal[next]; !ok || q.state != want {
		return ErrBadState
	}
	q.state = next
	return nil
}

// setRemote wires the RC peer (connection-manager internal).
func (q *QP) setRemote(peer *QP) {
	q.mu.Lock()
	q.remote = peer
	q.mu.Unlock()
}

// Remote reports the connected peer QP, or nil.
func (q *QP) Remote() *QP {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.remote
}

// PostRecv posts a receive buffer. The QP must be at least INIT. With an
// SRQ attached, receives must be posted to the SRQ instead.
func (q *QP) PostRecv(wr RecvWR) error {
	if q.srq != nil {
		return q.srq.Post(wr)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.state == StateReset || q.state == StateErr {
		return ErrBadState
	}
	q.recvq = append(q.recvq, wr)
	return nil
}

// RecvQueueLen reports posted, unconsumed receive buffers.
func (q *QP) RecvQueueLen() int {
	if q.srq != nil {
		return q.srq.Len()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.recvq)
}

// popRecv takes the oldest posted receive buffer.
func (q *QP) popRecv() (RecvWR, bool) {
	if q.srq != nil {
		return q.srq.pop()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.recvq) == 0 {
		return RecvWR{}, false
	}
	wr := q.recvq[0]
	q.recvq = q.recvq[1:]
	return wr, true
}

// Destroy errors the QP, flushes posted receives as StatusFlushed
// completions, and releases the QP number.
func (q *QP) Destroy() {
	q.mu.Lock()
	q.state = StateErr
	pending := q.recvq
	q.recvq = nil
	q.mu.Unlock()
	for _, wr := range pending {
		q.recvCQ.post(WC{ID: wr.ID, Op: OpRecv, Status: StatusFlushed, QPN: q.qpn})
	}
	q.hca.unregisterQP(q.qpn)
}

// PostSend posts a send-side work request. The posting cost is charged
// to clk; the outcome is reported asynchronously on the send CQ (like
// real verbs, transport errors surface as completion statuses, not as a
// PostSend error — PostSend errors only for caller mistakes).
func (q *QP) PostSend(clk *simnet.VClock, wr SendWR) error {
	remote, err := q.postCharge(clk, 1)
	if err != nil {
		return err
	}
	return q.dispatchSend(clk, wr, remote)
}

// PostSendN posts a burst of work requests with a single doorbell ring:
// the first WR pays the full PostOverhead, every further one only the
// coalesced WQE-build cost. A burst of one charges exactly what PostSend
// does. Like real verbs list posting, the burst stops at the first bad
// WR and the error names it; the completions of already-accepted WRs
// still arrive on the CQ.
func (q *QP) PostSendN(clk *simnet.VClock, wrs []SendWR) error {
	if len(wrs) == 0 {
		return nil
	}
	remote, err := q.postCharge(clk, len(wrs))
	if err != nil {
		return err
	}
	for i := range wrs {
		if err := q.dispatchSend(clk, wrs[i], remote); err != nil {
			return err
		}
	}
	return nil
}

// postCharge validates QP state and charges the doorbell cost for a
// burst of n WRs (one full PostOverhead plus n-1 coalesced builds).
func (q *QP) postCharge(clk *simnet.VClock, n int) (*QP, error) {
	q.mu.Lock()
	state := q.state
	remote := q.remote
	q.mu.Unlock()
	if state != StateRTS {
		return nil, ErrBadState
	}
	clk.Advance(q.hca.cfg.PostOverhead)
	if n > 1 {
		clk.Advance(simnet.Duration(n-1) * q.hca.cfg.CoalescedPostOverhead)
	}
	return remote, nil
}

// dispatchSend routes one already-charged WR into the transport.
func (q *QP) dispatchSend(clk *simnet.VClock, wr SendWR, remote *QP) error {
	switch wr.Op {
	case OpSend:
		return q.postSendMsg(clk, wr, remote)
	case OpRDMARead:
		return q.postRDMARead(clk, wr, remote)
	case OpRDMAWrite:
		return q.postRDMAWrite(clk, wr, remote)
	default:
		return ErrBadState
	}
}

// resolveDest picks the destination QP for a send.
func (q *QP) resolveDest(wr SendWR, remote *QP) (*QP, error) {
	if q.typ == UD {
		if wr.Dest == nil || wr.Dest.Target == nil {
			return nil, ErrNoAddress
		}
		dst, ok := wr.Dest.Target.lookupQP(wr.Dest.QPN)
		if !ok {
			return nil, nil // datagram to nowhere: silently lost
		}
		return dst, nil
	}
	if remote == nil {
		return nil, ErrNotConnected
	}
	return remote, nil
}

// transmit pushes bytes from src's node to dst's node through the
// fabric's fault model, retransmitting on loss for RC transports.
//
// On a lossless fabric (no injector installed) the first iteration
// returns immediately with exactly the plain-Deliver arrival time, so
// the retry machinery costs nothing when disabled. On loss, an RC
// sender waits AckTimeout for the missing ACK and retransmits, up to
// RetryCount times; exhaustion reports StatusRetryExceeded. UD loss is
// silent: the datagram is gone and delivered=false with StatusSuccess,
// like real fire-and-forget datagrams.
func (q *QP) transmit(src, dst *HCA, at simnet.Time, bytes int) (arrive simnet.Time, delivered bool, st Status) {
	cfg := q.hca.cfg
	for attempt := 0; ; attempt++ {
		arr, outcome, derr := src.fabric.DeliverFaulty(src.node, dst.node, at, bytes)
		if derr != nil {
			if q.typ == UD {
				return at, false, StatusSuccess
			}
			return at, false, StatusTransportError
		}
		if outcome == simnet.Delivered {
			return arr, true, StatusSuccess
		}
		if q.typ == UD {
			return arr, false, StatusSuccess
		}
		if attempt >= cfg.RetryCount {
			return arr, false, StatusRetryExceeded
		}
		q.hca.noteRetransmit()
		at = arr + cfg.AckTimeout
	}
}

// postSendMsg implements the two-sided SEND.
func (q *QP) postSendMsg(clk *simnet.VClock, wr SendWR, remote *QP) error {
	cfg := q.hca.cfg
	n := len(wr.Local)
	if wr.Inline && n > cfg.InlineMax {
		return ErrInlineLimit
	}
	if q.typ == UD && n > cfg.MTU {
		return ErrTooLarge
	}

	dst, err := q.resolveDest(wr, remote)
	if err != nil {
		return err
	}

	start := q.hca.sendEngine.Acquire(clk.Now(), cfg.SendProc)
	depart := start + cfg.SendProc

	if dst == nil { // UD datagram to an unknown QP
		q.sendCQ.post(WC{ID: wr.ID, Op: OpSend, Status: StatusSuccess, ByteLen: n, QPN: q.qpn, Time: depart})
		return nil
	}

	arrive, delivered, st := q.transmit(q.hca, dst.hca, depart, wireBytes(n, cfg))
	if !delivered {
		if st == StatusRetryExceeded {
			// IB semantics: retry exhaustion is fatal to the connection.
			q.Modify(StateErr)
		}
		q.sendCQ.post(WC{ID: wr.ID, Op: OpSend, Status: st, ByteLen: n, QPN: q.qpn, Time: depart})
		return nil
	}

	// The payload is copied now (sender goroutine acts as the DMA
	// engine); the stamp says when it becomes visible.
	rstatus, rtime := dst.receive(wr.Local, wr.Imm, q.qpn, arrive)

	// RNR retry: a reliable sender re-offers the message after the
	// receiver reported no posted buffer, waiting RNRTimer between
	// attempts (IB rnr_retry). Disabled when RNRRetry is 0.
	for rnr := 0; q.typ == RC && rstatus == StatusRNRRetryExceeded && rnr < cfg.RNRRetry; rnr++ {
		q.hca.noteRetransmit()
		a2, d2, s2 := q.transmit(q.hca, dst.hca, rtime+cfg.RNRTimer, wireBytes(n, cfg))
		if !d2 {
			rstatus, rtime = s2, rtime+cfg.RNRTimer
			break
		}
		rstatus, rtime = dst.receive(wr.Local, wr.Imm, q.qpn, a2)
	}

	// Local completion: for an inline or buffered send the origin buffer
	// is reusable as soon as the HCA has consumed it.
	localStatus := StatusSuccess
	localTime := depart
	if q.typ == RC && rstatus != StatusSuccess {
		// Reliable transport reflects the remote failure to the sender
		// (RNR retries exhausted / remote length error).
		localStatus = rstatus
		localTime = rtime
		if rstatus == StatusRetryExceeded {
			q.Modify(StateErr)
		}
	}
	q.sendCQ.post(WC{ID: wr.ID, Op: OpSend, Status: localStatus, ByteLen: n, QPN: q.qpn, Time: localTime})
	return nil
}

// receive consumes a posted receive buffer for an incoming SEND.
func (q *QP) receive(payload []byte, imm uint32, srcQPN uint32, arrive simnet.Time) (Status, simnet.Time) {
	cfg := q.hca.cfg
	q.mu.Lock()
	state := q.state
	q.mu.Unlock()
	if state != StateRTR && state != StateRTS {
		return StatusRemoteError, arrive
	}
	wr, ok := q.popRecv()
	if !ok {
		if q.typ == UD {
			return StatusSuccess, arrive // dropped on the floor
		}
		return StatusRNRRetryExceeded, arrive
	}
	if len(wr.Buf) < len(payload) {
		q.recvCQ.post(WC{ID: wr.ID, Op: OpRecv, Status: StatusRemoteError, QPN: q.qpn, SrcQPN: srcQPN, Time: arrive})
		return StatusRemoteError, arrive
	}
	copy(wr.Buf, payload)
	placed := q.hca.recvEngine.Acquire(arrive, cfg.RecvProc) + cfg.RecvProc
	q.recvCQ.post(WC{
		ID: wr.ID, Op: OpRecv, Status: StatusSuccess,
		ByteLen: len(payload), Imm: imm, QPN: q.qpn, SrcQPN: srcQPN, Time: placed,
	})
	return StatusSuccess, placed
}

// rdmaPeer validates the one-sided preconditions and returns the target.
func (q *QP) rdmaPeer(remote *QP) (*QP, error) {
	if q.typ != RC {
		return nil, ErrBadState // one-sided ops require a connected QP
	}
	if remote == nil {
		return nil, ErrNotConnected
	}
	return remote, nil
}

// postRDMARead pulls remote memory into wr.Local with no remote software
// involvement — the mechanism UCR uses to fetch large active-message
// payloads (paper §IV-B).
func (q *QP) postRDMARead(clk *simnet.VClock, wr SendWR, remote *QP) error {
	cfg := q.hca.cfg
	dst, err := q.rdmaPeer(remote)
	if err != nil {
		return err
	}
	n := len(wr.Local)

	// Request packet to the target.
	start := q.hca.sendEngine.Acquire(clk.Now(), cfg.SendProc)
	depart := start + cfg.SendProc
	reqArrive, delivered, st := q.transmit(q.hca, dst.hca, depart, cfg.HeaderBytes)
	if !delivered {
		if st == StatusRetryExceeded {
			q.Modify(StateErr)
		}
		q.sendCQ.post(WC{ID: wr.ID, Op: OpRDMARead, Status: st, QPN: q.qpn, Time: depart})
		return nil
	}

	// Target HCA serves the read from registered memory.
	src, ok := dst.hca.lookupMR(wr.RKey)
	if !ok {
		q.sendCQ.post(WC{ID: wr.ID, Op: OpRDMARead, Status: StatusRemoteError, QPN: q.qpn, Time: reqArrive})
		return nil
	}
	data, rerr := src.rdmaRange(wr.RemoteAddr, n)
	if rerr != nil {
		q.sendCQ.post(WC{ID: wr.ID, Op: OpRDMARead, Status: StatusRemoteError, QPN: q.qpn, Time: reqArrive})
		return nil
	}

	respStart := dst.hca.sendEngine.Acquire(reqArrive, cfg.RDMAProc)
	respDepart := respStart + cfg.RDMAProc
	respArrive, delivered, st := q.transmit(dst.hca, q.hca, respDepart, wireBytes(n, cfg))
	if !delivered {
		if st == StatusRetryExceeded {
			q.Modify(StateErr)
		}
		q.sendCQ.post(WC{ID: wr.ID, Op: OpRDMARead, Status: st, QPN: q.qpn, Time: respDepart})
		return nil
	}
	guardedCopy(wr.Local, data, q.hca.MemGuard(), dst.hca.MemGuard())
	done := q.hca.recvEngine.Acquire(respArrive, cfg.RecvProc) + cfg.RecvProc
	q.sendCQ.post(WC{ID: wr.ID, Op: OpRDMARead, Status: StatusSuccess, ByteLen: n, QPN: q.qpn, Time: done})
	return nil
}

// postRDMAWrite pushes wr.Local (followed by the optional wr.Local2
// gather segment) into remote memory. The two segments travel as one
// wire transaction and land contiguously at RemoteAddr — a two-SGE WQE.
func (q *QP) postRDMAWrite(clk *simnet.VClock, wr SendWR, remote *QP) error {
	cfg := q.hca.cfg
	dst, err := q.rdmaPeer(remote)
	if err != nil {
		return err
	}
	n := len(wr.Local) + len(wr.Local2)

	start := q.hca.sendEngine.Acquire(clk.Now(), cfg.SendProc)
	depart := start + cfg.SendProc
	arrive, delivered, st := q.transmit(q.hca, dst.hca, depart, wireBytes(n, cfg))
	if !delivered {
		if st == StatusRetryExceeded {
			q.Modify(StateErr)
		}
		q.sendCQ.post(WC{ID: wr.ID, Op: OpRDMAWrite, Status: st, QPN: q.qpn, Time: depart})
		return nil
	}
	tgt, ok := dst.hca.lookupMR(wr.RKey)
	if !ok {
		q.sendCQ.post(WC{ID: wr.ID, Op: OpRDMAWrite, Status: StatusRemoteError, QPN: q.qpn, Time: arrive})
		return nil
	}
	room, rerr := tgt.rdmaRange(wr.RemoteAddr, n)
	if rerr != nil {
		q.sendCQ.post(WC{ID: wr.ID, Op: OpRDMAWrite, Status: StatusRemoteError, QPN: q.qpn, Time: arrive})
		return nil
	}
	guardedCopy(room[:len(wr.Local)], wr.Local, dst.hca.MemGuard(), q.hca.MemGuard())
	if len(wr.Local2) > 0 {
		guardedCopy(room[len(wr.Local):], wr.Local2, dst.hca.MemGuard(), q.hca.MemGuard())
	}
	dst.hca.recvEngine.Acquire(arrive, cfg.RDMAProc)
	q.sendCQ.post(WC{ID: wr.ID, Op: OpRDMAWrite, Status: StatusSuccess, ByteLen: n, QPN: q.qpn, Time: depart})
	return nil
}

// SRQ is a shared receive queue: one pool of posted buffers feeding many
// QPs, reducing per-connection buffer consumption (the scalability
// design reused from MVAPICH that the paper cites). The ring has a fixed
// capacity like a hardware SRQ: Post beyond it fails with ErrSRQFull,
// and an empty ring makes RC senders take the RNR retry path (receiver
// not ready) rather than dropping — the backpressure loop the shared-
// serving datapath leans on when a burst outruns the repost rate.
type SRQ struct {
	hca *HCA
	cap int
	mu  sync.Mutex
	q   []RecvWR
}

// DefaultSRQCap bounds an SRQ created without an explicit capacity.
const DefaultSRQCap = 4096

// CreateSRQ allocates a shared receive queue with the default capacity.
func (h *HCA) CreateSRQ() *SRQ { return h.CreateSRQSized(DefaultSRQCap) }

// CreateSRQSized allocates a shared receive queue holding at most cap
// posted buffers (cap <= 0 selects the default).
func (h *HCA) CreateSRQSized(cap int) *SRQ {
	if cap <= 0 {
		cap = DefaultSRQCap
	}
	return &SRQ{hca: h, cap: cap}
}

// Cap reports the ring capacity.
func (s *SRQ) Cap() int { return s.cap }

// Post adds a buffer to the shared pool; ErrSRQFull when the ring is at
// capacity (the work request is not queued).
func (s *SRQ) Post(wr RecvWR) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.q) >= s.cap {
		return ErrSRQFull
	}
	s.q = append(s.q, wr)
	return nil
}

// Len reports available buffers.
func (s *SRQ) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.q)
}

func (s *SRQ) pop() (RecvWR, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.q) == 0 {
		return RecvWR{}, false
	}
	wr := s.q[0]
	s.q = s.q[1:]
	return wr, true
}

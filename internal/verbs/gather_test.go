package verbs

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/simnet"
)

// Two-SGE RDMA WRITE: Local then Local2 land contiguously at RemoteAddr,
// the completion reports the combined length, and the copy honors an
// installed destination memory guard (the seqlock-protected published
// windows take this path).
func TestRDMAWriteGatherLandsContiguously(t *testing.T) {
	p := newPair(t, 2, 256)
	p.srvHCA.SetMemGuard(&sync.RWMutex{})

	srvBuf := make([]byte, 64)
	srvMR, err := p.srvHCA.RegisterMR(p.srvPD, srvBuf, nil)
	if err != nil {
		t.Fatal(err)
	}
	hdr := []byte("HDR:")
	val := []byte("value-bytes")
	err = p.cliQP.PostSend(p.cliClock, SendWR{
		ID: 1, Op: OpRDMAWrite, Local: hdr, Local2: val,
		RemoteAddr: srvMR.VA() + 8, RKey: srvMR.RKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, ok := p.cliSend.TryPollWith(p.cliClock)
	if !ok || wc.Status != StatusSuccess {
		t.Fatalf("gather write: ok=%v wc=%+v", ok, wc)
	}
	if wc.ByteLen != len(hdr)+len(val) {
		t.Fatalf("ByteLen = %d, want %d (both segments)", wc.ByteLen, len(hdr)+len(val))
	}
	if !bytes.Equal(srvBuf[8:8+len(hdr)+len(val)], []byte("HDR:value-bytes")) {
		t.Fatalf("remote bytes = %q, want segments contiguous", srvBuf[8:8+len(hdr)+len(val)])
	}
	for _, b := range srvBuf[:8] {
		if b != 0 {
			t.Fatal("write touched bytes before RemoteAddr")
		}
	}
}

// Depth-1 charge degeneracy: a PostSendN burst of one two-SGE write must
// advance the clock exactly as much as PostSend of the identical WR —
// the gather segment adds wire bytes, never post-time CPU cost.
func TestRDMAWriteGatherChargeDegenerateDepth1(t *testing.T) {
	mkWR := func(mr *MR) SendWR {
		return SendWR{
			ID: 1, Op: OpRDMAWrite, Local: []byte("hdrhdrhd"), Local2: make([]byte, 4096),
			RemoteAddr: mr.VA(), RKey: mr.RKey(),
		}
	}
	p1 := newPair(t, 2, 256)
	mr1, err := p1.srvHCA.RegisterMR(p1.srvPD, make([]byte, 8192), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := p1.cliClock.Now()
	if err := p1.cliQP.PostSend(p1.cliClock, mkWR(mr1)); err != nil {
		t.Fatal(err)
	}
	single := p1.cliClock.Now() - before

	p2 := newPair(t, 2, 256)
	mr2, err := p2.srvHCA.RegisterMR(p2.srvPD, make([]byte, 8192), nil)
	if err != nil {
		t.Fatal(err)
	}
	before = p2.cliClock.Now()
	if err := p2.cliQP.PostSendN(p2.cliClock, []SendWR{mkWR(mr2)}); err != nil {
		t.Fatal(err)
	}
	if batched := p2.cliClock.Now() - before; batched != single {
		t.Fatalf("PostSendN(1 gather write) advanced %v, PostSend advanced %v", batched, single)
	}
}

// The remote window bounds are enforced on the COMBINED gather length:
// a header that fits where header+value overflows must fail with
// StatusRemoteError and leave remote memory untouched. A bad RKey fails
// the same way.
func TestRDMAWriteGatherWindowBounds(t *testing.T) {
	p := newPair(t, 2, 256)
	srvBuf := make([]byte, 16)
	srvMR, err := p.srvHCA.RegisterMR(p.srvPD, srvBuf, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4-byte header fits the 16-byte window; +16 bytes of value does not.
	err = p.cliQP.PostSend(p.cliClock, SendWR{
		ID: 1, Op: OpRDMAWrite, Local: []byte("hdr!"), Local2: make([]byte, 16),
		RemoteAddr: srvMR.VA(), RKey: srvMR.RKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, ok := p.cliSend.TryPollWith(p.cliClock)
	if !ok || wc.Status != StatusRemoteError {
		t.Fatalf("overflowing gather write: ok=%v status=%v, want remote-error", ok, wc.Status)
	}
	for _, b := range srvBuf {
		if b != 0 {
			t.Fatal("failed gather write modified remote memory")
		}
	}
	err = p.cliQP.PostSend(p.cliClock, SendWR{
		ID: 2, Op: OpRDMAWrite, Local: []byte("x"), Local2: []byte("y"),
		RemoteAddr: srvMR.VA(), RKey: srvMR.RKey() + 0xbad,
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, ok = p.cliSend.TryPollWith(p.cliClock)
	if !ok || wc.Status != StatusRemoteError {
		t.Fatalf("bad-rkey gather write: ok=%v status=%v, want remote-error", ok, wc.Status)
	}
}

// A gather write on a 100% lossy fabric exhausts the RC retry budget:
// StatusRetryExceeded on the WR and the QP moves to ERR, exactly like a
// two-sided send.
func TestRDMAWriteGatherRetryExceeded(t *testing.T) {
	p := newPair(t, 2, 256)
	srvMR, err := p.srvHCA.RegisterMR(p.srvPD, make([]byte, 64), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.fab.SetFaults(simnet.NewFaultInjector(simnet.FaultConfig{Seed: 3, DropRate: 1.0}))

	err = p.cliQP.PostSend(p.cliClock, SendWR{
		ID: 9, Op: OpRDMAWrite, Local: []byte("hd"), Local2: []byte("doomed"),
		RemoteAddr: srvMR.VA(), RKey: srvMR.RKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, ok := p.cliSend.TryPollWith(p.cliClock)
	if !ok || wc.Status != StatusRetryExceeded {
		t.Fatalf("gather write through total loss: ok=%v status=%v, want retry-exceeded", ok, wc.Status)
	}
	if st := p.cliQP.State(); st != StateErr {
		t.Fatalf("QP state after retry exhaustion = %v, want ERR", st)
	}
	if err := p.cliQP.PostSend(p.cliClock, SendWR{ID: 10, Op: OpRDMAWrite, Local: []byte("x"), RemoteAddr: srvMR.VA(), RKey: srvMR.RKey()}); err != ErrBadState {
		t.Fatalf("PostSend on errored QP = %v, want ErrBadState", err)
	}
}

// RDMA WRITE is one-sided: it consumes no receive buffer, so a receiver
// with an empty receive queue never triggers the RNR path for writes —
// while a SEND on the very same QP does. The write-reply datapath leans
// on this: data writes can never burn SRQ credits.
func TestRDMAWriteGatherNoRNR(t *testing.T) {
	p := newPair(t, 0, 0) // no receive buffers posted anywhere
	srvBuf := make([]byte, 32)
	srvMR, err := p.srvHCA.RegisterMR(p.srvPD, srvBuf, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = p.cliQP.PostSend(p.cliClock, SendWR{
		ID: 1, Op: OpRDMAWrite, Local: []byte("no-"), Local2: []byte("rnr"),
		RemoteAddr: srvMR.VA(), RKey: srvMR.RKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, ok := p.cliSend.TryPollWith(p.cliClock)
	if !ok || wc.Status != StatusSuccess {
		t.Fatalf("gather write with no posted receives: ok=%v status=%v, want success", ok, wc.Status)
	}
	if !bytes.Equal(srvBuf[:6], []byte("no-rnr")) {
		t.Fatalf("remote bytes = %q", srvBuf[:6])
	}
	if p.cliHCA.Retransmits() != 0 {
		t.Fatal("one-sided write took the RNR retransmit path")
	}
	// Contrast: a SEND on the same starved QP reports RNR.
	if err := p.cliQP.PostSend(p.cliClock, SendWR{ID: 2, Op: OpSend, Local: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	wc, ok = p.cliSend.TryPollWith(p.cliClock)
	if !ok || wc.Status != StatusRNRRetryExceeded {
		t.Fatalf("send with no posted receives: ok=%v status=%v, want rnr-retry-exceeded", ok, wc.Status)
	}
}

package verbs

import (
	"errors"
	"time"

	"repro/internal/simnet"
)

// CM is a connection manager: the rendezvous service that pairs RC
// queue pairs across nodes (the role RDMA-CM / IB CM plays on real
// fabrics). One CM instance serves one fabric; deployments share it by
// handle.
//
// The exchange is modelled as one request/reply round trip of small
// management datagrams, charged to both sides' clocks.
type CM struct {
	fabric    *simnet.Fabric
	listeners *registry[string, *Listener]
}

// Connection-manager errors.
var (
	ErrRefused        = errors.New("verbs/cm: connection refused (no listener)")
	ErrConnectTimeout = errors.New("verbs/cm: connect timed out")
	ErrListenerClosed = errors.New("verbs/cm: listener closed")
	ErrDuplicateSvc   = errors.New("verbs/cm: service already registered")
)

// NewCM creates a connection manager for the fabric.
func NewCM(fabric *simnet.Fabric) *CM {
	return &CM{fabric: fabric, listeners: newRegistry[string, *Listener]()}
}

// Fabric reports the fabric this CM serves.
func (cm *CM) Fabric() *simnet.Fabric { return cm.fabric }

// cmMsgBytes is the on-the-wire size of one management datagram.
const cmMsgBytes = 64

// ConnRequest is a pending connection attempt delivered to a listener.
type ConnRequest struct {
	cm       *CM
	fromQP   *QP
	arriveAt simnet.Time
	service  string
	reply    *simnet.Mailbox[connReply]
}

type connReply struct {
	qp     *QP
	sentAt simnet.Time
	err    error
}

// Service reports the service name the peer dialed.
func (r *ConnRequest) Service() string { return r.service }

// RemoteQP reports the dialer's queue pair.
func (r *ConnRequest) RemoteQP() *QP { return r.fromQP }

// ArriveAt reports the virtual time the request reached the listener.
func (r *ConnRequest) ArriveAt() simnet.Time { return r.arriveAt }

// Accept completes the handshake: qp (owned by the acceptor, already
// INIT or later, with receives posted) is paired with the dialer's QP
// and both ends are driven to RTS. RC queue pairs are wired 1:1; UD
// queue pairs merely learn each other (the caller builds address handles
// from the exchanged QPs). The acceptor's clock must already have been
// synchronized with ArriveAt by Listener.Accept.
func (r *ConnRequest) Accept(qp *QP, clk *simnet.VClock) error {
	if qp.Type() != r.fromQP.Type() {
		return ErrBadState
	}
	// Drive the local QP to RTS from wherever bring-up left it.
	for _, st := range []QPState{StateInit, StateRTR, StateRTS} {
		if qp.State() == StateRTS {
			break
		}
		if err := qp.Modify(st); err != nil && qp.State() != st {
			return err
		}
	}
	if qp.Type() == RC {
		qp.setRemote(r.fromQP)
		r.fromQP.setRemote(qp)
	}
	r.reply.Put(connReply{qp: qp, sentAt: clk.Now()})
	return nil
}

// Reject declines the request; the dialer's Connect returns err.
func (r *ConnRequest) Reject(err error) {
	r.reply.Put(connReply{err: err})
}

// Listener accepts connection requests for a service name.
type Listener struct {
	cm      *CM
	service string
	queue   *simnet.Mailbox[*ConnRequest]
}

// Listen registers a service. Service names are fabric-wide unique.
func (cm *CM) Listen(service string) (*Listener, error) {
	l := &Listener{cm: cm, service: service, queue: simnet.NewMailbox[*ConnRequest]()}
	if !cm.listeners.putIfAbsent(service, l) {
		return nil, ErrDuplicateSvc
	}
	return l, nil
}

// Accept blocks for the next request and synchronizes clk with its
// arrival. ok=false means the listener was closed.
func (l *Listener) Accept(clk *simnet.VClock) (*ConnRequest, bool) {
	req, ok := l.queue.Recv()
	if !ok {
		return nil, false
	}
	clk.AdvanceTo(req.arriveAt)
	return req, true
}

// AcceptTimeout is Accept with a real-time cap (for shutdown paths).
func (l *Listener) AcceptTimeout(clk *simnet.VClock, realCap time.Duration) (*ConnRequest, bool) {
	req, ok, _ := l.queue.RecvTimeout(realCap)
	if !ok {
		return nil, false
	}
	clk.AdvanceTo(req.arriveAt)
	return req, true
}

// Close unregisters the service and wakes pending Accepts.
func (l *Listener) Close() {
	l.cm.listeners.delete(l.service)
	l.queue.Close()
}

// Connect dials a service on a remote node: it sends a management
// request, waits (bounded in real time by realCap) for the acceptor,
// and pairs qp with the accepted peer, which is returned (RC pairs are
// wired; for UD the caller builds an address handle from the peer).
// qp must be a fresh queue pair, already INIT or later with receives
// posted, owned by the caller.
func (cm *CM) Connect(qp *QP, remote *simnet.Node, service string, clk *simnet.VClock, realCap time.Duration) (*QP, error) {
	l, ok := cm.listeners.get(service)
	if !ok {
		// Refused replies still cost a round trip.
		if arrive, err := cm.fabric.Deliver(qp.hca.node, remote, clk.Now(), cmMsgBytes); err == nil {
			if back, err := cm.fabric.Deliver(remote, qp.hca.node, arrive, cmMsgBytes); err == nil {
				clk.AdvanceTo(back)
			}
		}
		return nil, ErrRefused
	}
	arrive, err := cm.fabric.Deliver(qp.hca.node, remote, clk.Now(), cmMsgBytes)
	if err != nil {
		return nil, err
	}
	req := &ConnRequest{
		cm:       cm,
		fromQP:   qp,
		arriveAt: arrive,
		service:  service,
		reply:    simnet.NewMailbox[connReply](),
	}
	l.queue.Put(req)

	rep, ok, timedOut := req.reply.RecvTimeout(realCap)
	if timedOut {
		return nil, ErrConnectTimeout
	}
	if !ok {
		return nil, ErrListenerClosed
	}
	if rep.err != nil {
		return nil, rep.err
	}
	back, err := cm.fabric.Deliver(rep.qp.hca.node, qp.hca.node, rep.sentAt, cmMsgBytes)
	if err != nil {
		return nil, err
	}
	clk.AdvanceTo(back)
	// Drive the dialer side to RTS.
	for _, st := range []QPState{StateInit, StateRTR, StateRTS} {
		if qp.State() == StateRTS {
			break
		}
		if err := qp.Modify(st); err != nil && qp.State() != st {
			return nil, err
		}
	}
	return rep.qp, nil
}

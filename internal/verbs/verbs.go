// Package verbs implements a software InfiniBand verbs layer — the
// lowest, OS-bypassed access layer the paper builds UCR on (§II-A1).
//
// The API mirrors the OpenFabrics verbs object model: an HCA (host
// channel adapter) owns protection domains (PD), registered memory
// regions (MR), completion queues (CQ) and queue pairs (QP, reliable
// connected or unreliable datagram). Upper layers post work requests
// (SEND, RECV, RDMA READ, RDMA WRITE) on a QP and detect completion by
// polling the CQ — polling yields the lowest latency, exactly as §II-A1
// notes, and event (interrupt) mode is available for the ablation bench.
//
// Data movement is real: SENDs copy payload bytes into pre-posted
// receive buffers, RDMA READ/WRITE copy directly between registered
// regions with no remote software involvement. Time is virtual: each
// operation charges the configured HCA processing costs and the fabric's
// wire model (see internal/simnet).
package verbs

import (
	"errors"
	"fmt"

	"repro/internal/simnet"
)

// Opcode identifies the kind of work request.
type Opcode uint8

// Work request opcodes.
const (
	OpSend Opcode = iota
	OpRecv
	OpRDMARead
	OpRDMAWrite
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpRecv:
		return "RECV"
	case OpRDMARead:
		return "RDMA_READ"
	case OpRDMAWrite:
		return "RDMA_WRITE"
	default:
		return fmt.Sprintf("Opcode(%d)", uint8(o))
	}
}

// Status is a work completion status.
type Status uint8

// Work completion statuses.
const (
	StatusSuccess Status = iota
	StatusRemoteError
	StatusRNRRetryExceeded // receiver not ready: no posted receive buffer
	StatusFlushed          // QP destroyed/errored with work outstanding
	StatusTransportError   // fabric unreachable / peer failed
	StatusRetryExceeded    // RC retransmission budget exhausted on a lossy fabric
)

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusRemoteError:
		return "remote-error"
	case StatusRNRRetryExceeded:
		return "rnr-retry-exceeded"
	case StatusFlushed:
		return "flushed"
	case StatusTransportError:
		return "transport-error"
	case StatusRetryExceeded:
		return "retry-exceeded"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Errors returned by verbs operations.
var (
	ErrBadState     = errors.New("verbs: queue pair in wrong state")
	ErrPDMismatch   = errors.New("verbs: protection domain mismatch")
	ErrBadKey       = errors.New("verbs: invalid memory key")
	ErrOutOfBounds  = errors.New("verbs: access outside registered region")
	ErrTooLarge     = errors.New("verbs: message exceeds transport limit")
	ErrNoAddress    = errors.New("verbs: UD send requires an address handle")
	ErrQPDestroyed  = errors.New("verbs: queue pair destroyed")
	ErrInlineLimit  = errors.New("verbs: payload exceeds inline limit")
	ErrNotConnected = errors.New("verbs: RC queue pair not connected")
	ErrSRQFull      = errors.New("verbs: shared receive queue ring full")
)

// QPState is the queue pair state machine position (a subset of the IB
// spec's states, enough to enforce correct bring-up ordering).
type QPState uint8

// Queue pair states.
const (
	StateReset QPState = iota
	StateInit
	StateRTR // ready to receive
	StateRTS // ready to send
	StateErr
)

func (s QPState) String() string {
	switch s {
	case StateReset:
		return "RESET"
	case StateInit:
		return "INIT"
	case StateRTR:
		return "RTR"
	case StateRTS:
		return "RTS"
	case StateErr:
		return "ERR"
	default:
		return fmt.Sprintf("QPState(%d)", uint8(s))
	}
}

// QPType selects the transport service.
type QPType uint8

// Transport services. RC is what the paper's UCR uses; UD is the
// future-work extension (§VII) for scaling client counts.
const (
	RC QPType = iota // reliable connected
	UD               // unreliable datagram
)

func (t QPType) String() string {
	if t == UD {
		return "UD"
	}
	return "RC"
}

// Config holds the HCA cost model. All durations are charged in virtual
// time; see internal/cluster for the per-generation parameter sets
// (ConnectX DDR for cluster A, ConnectX QDR for cluster B).
type Config struct {
	// PostOverhead is the CPU cost of posting one work request
	// (building the WQE and ringing the doorbell).
	PostOverhead simnet.Duration
	// SendProc is the HCA pipeline time to emit one message.
	SendProc simnet.Duration
	// RecvProc is the HCA pipeline time to place one arrived message.
	RecvProc simnet.Duration
	// RDMAProc is the target-HCA time to serve one RDMA read/write
	// (no software there; this is the adapter's DMA setup).
	RDMAProc simnet.Duration
	// PollOverhead is the CPU cost of one successful CQ poll.
	PollOverhead simnet.Duration
	// InterruptOverhead replaces PollOverhead when a CQ is armed for
	// events (interrupt-driven completion, §II-A1's slower option).
	InterruptOverhead simnet.Duration
	// CoalescedPostOverhead is the per-WR cost of the 2nd..Nth work
	// request in one PostSendN burst: the WQE build without a doorbell
	// ring, since a burst rings the doorbell once. Defaults to half of
	// PostOverhead. A burst of one charges exactly PostOverhead.
	CoalescedPostOverhead simnet.Duration
	// CoalescedPollOverhead is the harvest cost of the 2nd..Nth
	// completion taken in one batched CQ drain (the poll loop is already
	// hot; only the CQE read is paid). Defaults to half of PollOverhead.
	// It applies in both polling and event mode — after the wakeup,
	// draining extra CQEs is a poll either way.
	CoalescedPollOverhead simnet.Duration
	// RegBase and RegPerByte model memory-registration (pinning) cost.
	RegBase    simnet.Duration
	RegPerByte float64 // ns per byte
	// HeaderBytes is the per-packet transport header on the wire.
	HeaderBytes int
	// MTU is the path MTU for segmentation accounting and the hard
	// limit for a single UD datagram.
	MTU int
	// InlineMax is the largest payload that can be sent inline (copied
	// into the WQE, making the origin buffer immediately reusable).
	InlineMax int
	// RetryCount is how many times an RC QP retransmits a packet that
	// the fabric lost before completing the WR with
	// StatusRetryExceeded and moving the QP to ERR (IB retry_cnt).
	RetryCount int
	// AckTimeout is the wait before each RC retransmission (the
	// local-ack-timeout the sender waits for a missing ACK).
	AckTimeout simnet.Duration
	// RNRRetry is how many times an RC sender re-offers a SEND after
	// the receiver reported receiver-not-ready. Zero keeps the legacy
	// behaviour of failing immediately with StatusRNRRetryExceeded.
	RNRRetry int
	// RNRTimer is the back-off before each RNR retransmission.
	RNRTimer simnet.Duration
}

// withDefaults fills unset fields with sane values.
func (c Config) withDefaults() Config {
	if c.MTU <= 0 {
		c.MTU = 2048
	}
	if c.HeaderBytes <= 0 {
		c.HeaderBytes = 30
	}
	if c.InlineMax <= 0 {
		c.InlineMax = 128
	}
	if c.RetryCount <= 0 {
		c.RetryCount = 7 // the IB verbs maximum for retry_cnt
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 10 * simnet.Microsecond
	}
	if c.RNRTimer <= 0 {
		c.RNRTimer = 20 * simnet.Microsecond
	}
	if c.CoalescedPostOverhead <= 0 {
		c.CoalescedPostOverhead = c.PostOverhead / 2
	}
	if c.CoalescedPollOverhead <= 0 {
		c.CoalescedPollOverhead = c.PollOverhead / 2
	}
	// RNRRetry deliberately defaults to 0: an RC SEND into a QP with no
	// posted receive fails immediately, which is what the credit-based
	// upper layers rely on to signal misconfiguration loudly.
	return c
}

// SendWR is a send-side work request.
type SendWR struct {
	// ID is an opaque caller token echoed in the completion.
	ID uint64
	// Op is OpSend, OpRDMARead or OpRDMAWrite.
	Op Opcode
	// Local is the local buffer: the payload for SEND/RDMA WRITE, the
	// destination for RDMA READ. It must lie within LocalMR.
	Local []byte
	// Local2 is an optional second gather segment for RDMA WRITE: the
	// wire carries Local followed by Local2 and the target stores them
	// contiguously at RemoteAddr. This models a two-SGE WQE (header +
	// payload gathered from separate registrations) without a scatter
	// list type; other opcodes ignore it.
	Local2 []byte
	// LocalMR is the registration covering Local.
	LocalMR *MR
	// Inline requests inline emission of a small SEND payload.
	Inline bool
	// RemoteAddr and RKey name the remote region for RDMA operations.
	RemoteAddr uint64
	RKey       uint32
	// Dest addresses a UD send.
	Dest *AddressHandle
	// Imm carries 32 bits of immediate data with a SEND.
	Imm uint32
}

// RecvWR is a pre-posted receive buffer.
type RecvWR struct {
	ID  uint64
	Buf []byte
}

// WC is a work completion.
type WC struct {
	ID      uint64
	Op      Opcode
	Status  Status
	ByteLen int
	Imm     uint32
	// SrcQPN identifies the sender's queue pair (meaningful for UD).
	SrcQPN uint32
	// QPN identifies the local queue pair the completion belongs to.
	QPN uint32
	// Time is the virtual time at which the completion became visible.
	Time simnet.Time
}

// AddressHandle names a remote UD endpoint: the target adapter and the
// queue pair number on it (the in-process analogue of LID + QPN).
type AddressHandle struct {
	Target *HCA
	QPN    uint32
}

// wireBytes computes on-the-wire size including per-MTU packet headers.
func wireBytes(payload int, cfg Config) int {
	if payload <= 0 {
		return cfg.HeaderBytes
	}
	packets := (payload + cfg.MTU - 1) / cfg.MTU
	return payload + packets*cfg.HeaderBytes
}

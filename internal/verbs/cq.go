package verbs

import (
	"time"

	"repro/internal/simnet"
)

// CQ is a completion queue. The owner detects completions either by
// polling (the paper's low-latency choice) or, if armed with UseEvents,
// by interrupt-style events that charge a higher per-completion cost.
type CQ struct {
	hca *HCA
	box *simnet.Mailbox[WC]

	// UseEvents switches the completion cost model from PollOverhead
	// to InterruptOverhead (ablation: polling vs events, §II-A1).
	UseEvents bool
}

// CreateCQ allocates a completion queue on the adapter.
func (h *HCA) CreateCQ() *CQ {
	return &CQ{hca: h, box: simnet.NewMailbox[WC]()}
}

// post enqueues a completion (transport-internal).
func (c *CQ) post(wc WC) { c.box.Put(wc) }

// completionCost is the CPU time to harvest one completion.
func (c *CQ) completionCost() simnet.Duration {
	if c.UseEvents {
		return c.hca.cfg.InterruptOverhead
	}
	return c.hca.cfg.PollOverhead
}

// Cost exposes the full per-completion harvest cost (poll or interrupt,
// per the CQ's mode) for callers that drive TryPoll themselves.
func (c *CQ) Cost() simnet.Duration { return c.completionCost() }

// CoalescedCost exposes the reduced harvest cost of the 2nd..Nth
// completions of a batched drain (and of a spin-covered harvest).
func (c *CQ) CoalescedCost() simnet.Duration { return c.hca.cfg.CoalescedPollOverhead }

// TryPoll returns a completion if one is immediately available. The
// caller is responsible for advancing its clock to wc.Time plus the
// adapter's poll overhead (Wait and TryPollWith do this automatically).
func (c *CQ) TryPoll() (WC, bool) {
	wc, ok, _ := c.box.TryRecv()
	return wc, ok
}

// TryPollWith is TryPoll plus clock synchronization: on success clk
// advances to the completion time and is charged the harvest cost
// (poll or interrupt, per the CQ's mode).
func (c *CQ) TryPollWith(clk *simnet.VClock) (WC, bool) {
	wc, ok, _ := c.box.TryRecv()
	if !ok {
		return wc, false
	}
	clk.AdvanceTo(wc.Time)
	clk.Advance(c.completionCost())
	return wc, true
}

// TryPollReady harvests a completion only if one is already visible at
// clk's current time (wc.Time has passed), charging the coalesced
// batched-drain cost instead of the full poll/interrupt cost. It is the
// 2nd..Nth step of a batched CQ drain: the caller paid the full harvest
// cost for the first completion and sweeps the rest of the backlog
// cheaply. A completion that lands in the future is left in place for a
// later full-cost harvest, so time never runs backwards and a lone
// completion costs exactly what it always did.
func (c *CQ) TryPollReady(clk *simnet.VClock) (WC, bool) {
	wc, ok, _ := c.box.TryRecv()
	if !ok {
		return wc, false
	}
	if wc.Time > clk.Now() {
		c.box.PutFront(wc)
		return WC{}, false
	}
	clk.Advance(c.hca.cfg.CoalescedPollOverhead)
	return wc, true
}

// TryPollSpin is TryPollReady for a drain that busy-polls briefly
// instead of parking: it additionally harvests a completion landing
// within `spin` of clk's current time, advancing the clock to the
// completion (the time spent spinning) and still charging only the
// coalesced cost — a poller that stays in its loop pays no wakeup. A
// completion further out is left in place for a full-cost harvest, so
// callers that never spin (spin <= 0) get TryPollReady exactly.
func (c *CQ) TryPollSpin(clk *simnet.VClock, spin simnet.Duration) (WC, bool) {
	if spin < 0 {
		spin = 0
	}
	wc, ok, _ := c.box.TryRecv()
	if !ok {
		return wc, false
	}
	if wc.Time > clk.Now()+spin {
		c.box.PutFront(wc)
		return WC{}, false
	}
	clk.AdvanceTo(wc.Time)
	clk.Advance(c.hca.cfg.CoalescedPollOverhead)
	return wc, true
}

// Wait blocks until a completion is available, then synchronizes clk
// with the completion time and charges the harvest cost.
// ok=false means the CQ was destroyed.
func (c *CQ) Wait(clk *simnet.VClock) (WC, bool) {
	wc, ok := c.box.Recv()
	if !ok {
		return wc, false
	}
	clk.AdvanceTo(wc.Time)
	clk.Advance(c.completionCost())
	return wc, true
}

// WaitDeadline is Wait with a virtual deadline and a real-time cap.
// If nothing arrives, ok=false and timedOut=true; clk is advanced to the
// virtual deadline (the caller "spent" that time waiting). The real cap
// exists because virtual time cannot advance on a silent channel — it
// fires only on genuine loss (peer death), which is what the paper's
// timeout-based fault detection (§IV-A) is for.
func (c *CQ) WaitDeadline(clk *simnet.VClock, deadline simnet.Time, realCap time.Duration) (wc WC, ok, timedOut bool) {
	wc, ok, timedOut = c.box.RecvTimeout(realCap)
	if !ok {
		if timedOut {
			clk.AdvanceTo(deadline)
		}
		return wc, false, timedOut
	}
	if wc.Time > deadline {
		// Completion exists but lands after the virtual deadline: the
		// waiter gave up first. Requeue for a later harvest.
		c.box.PutFront(wc)
		clk.AdvanceTo(deadline)
		return WC{}, false, true
	}
	clk.AdvanceTo(wc.Time)
	clk.Advance(c.completionCost())
	return wc, true, false
}

// ReadyC exposes the completion queue's readiness channel: one token
// means "completions may be pending (or the CQ was destroyed) since you
// last looked". Event-loop owners park on it in a select instead of
// dedicating a waker goroutine; after a token the owner drains with
// TryPoll* until empty. Spurious tokens are possible and harmless. Only
// the single CQ owner may take from this channel.
func (c *CQ) ReadyC() <-chan struct{} { return c.box.NotifyC() }

// WaitAvailable blocks until a completion is pending, or the CQ is
// destroyed (false). It consumes nothing and charges no time — it is the
// event-channel arm used by a waker goroutine in server event loops; the
// owning worker then harvests with TryPoll/Wait. Waker and owner must be
// sequenced, never concurrent.
func (c *CQ) WaitAvailable() bool {
	wc, ok := c.box.Recv()
	if !ok {
		return false
	}
	c.box.PutFront(wc)
	return true
}

// Len reports the number of pending completions.
func (c *CQ) Len() int { return c.box.Len() }

// Destroy closes the queue, waking any waiter.
func (c *CQ) Destroy() { c.box.Close() }

package memcheck

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/mcclient"
	"repro/internal/memcached"
	"repro/internal/simnet"
)

// Config selects what one memcheck run exercises.
type Config struct {
	// Transport is the wire the clients use (cluster.UCRIB, cluster.IPoIB, …).
	Transport cluster.Transport
	// Seed drives both workload generation and (with Faults) the drop
	// pattern. The same Config is bit-for-bit replayable.
	Seed uint64
	// Clients / Ops size the generated workload (defaults 3 / 400).
	Clients int
	Ops     int
	// Faults turns on a lossy fabric (1% drop) plus client retries.
	Faults bool
	// Pressure shrinks the cache so LRU eviction runs constantly.
	Pressure bool
	// NoBursts generates a purely blocking workload with the TTL mix
	// (see GenConfig.NoBursts).
	NoBursts bool
	// OneSided arms the one-sided GET path (UCR transport only): servers
	// publish the RDMA-readable directory and clients serve validated GET
	// hits without any server AM. Those hits leave no server record, so
	// the cross-check validates them by item-version containment.
	OneSided bool
	// SRQ serves the deployment from shared receive queues (UCR
	// transport only): one buffer pool per server worker instead of
	// per-endpoint credit rings, with arrivals demultiplexed back to
	// endpoints by QPN. Result.SRQDemux counts those demux decisions —
	// a run that never demuxed validated nothing.
	SRQ bool
	// UD arms the hybrid UD small-get mode (UCR transport only):
	// clients dial an unreliable datagram endpoint beside RC and serve
	// datagram-sized GET/MGETs over it, with client-side retransmission
	// recovering losses. Result.UDGets / UDRetransmits count the
	// traffic for vacuity checks.
	UD bool
	// WriteReplies arms the write-based reply path (UCR transport
	// only): clients advertise registered reply windows with each GET/
	// MGET and servers answer crossover-sized hits by RDMA-writing the
	// reply into the window, completing the op with a payload-free
	// notify. The crossover is forced down to 64 bytes so the
	// generator's ordinary values exercise the path; replies below it
	// (and oversize-vs-window ones) still take the fallback ladder.
	// Result.WriteReplies counts the server's posted writes — a sweep
	// that never wrote validated nothing.
	WriteReplies bool
}

// Observation is one client-side outcome, tagged with which client saw it.
type Observation struct {
	Client int
	Op     mcclient.ObservedOp
}

// runOutcome is everything one execution produced: the server's
// transition history (sorted by Seq — the linearization order), the
// clients' observations, and the datapath counters the srq/ud vacuity
// guards check.
type runOutcome struct {
	Records       []*memcached.OpRecord
	Obs           []Observation
	SRQDemux      uint64
	UDGets        uint64
	UDRetransmits uint64
	BatchedDrains uint64
	WriteReplies  uint64
}

// execute runs a script against a fresh deployment and collects the
// history. A returned error is a harness-level failure (an operation
// failed in a way the configuration cannot explain), reported as a
// violation by the caller.
func execute(sc Script, cfg Config) (*runOutcome, error) {
	opts := cluster.Options{
		Servers:       1,
		ServerWorkers: 2,
		Stripes:       4,
		MemoryLimit:   64 << 20,
	}
	if cfg.Pressure {
		// Two slab pages: one ends up with the small classes, one with
		// the generator's 33–63 KB pressure values (≈16 chunks), so LRU
		// eviction starts within a couple dozen stores.
		opts.MemoryLimit = 2 << 20
	}
	if cfg.Faults {
		opts.Faults = cluster.LossyFaults(1.0, cfg.Seed^0x5eed)
	}
	if cfg.OneSided {
		opts.OneSidedGet = true
	}
	if cfg.SRQ {
		opts.UseSRQ = true
	}
	if cfg.UD {
		opts.UDGets = true
	}
	if cfg.WriteReplies {
		opts.WriteReplies = true
		opts.WriteReplyEager = 64
	}
	d := cluster.New(cluster.ClusterB(), opts)
	defer d.Close()

	b := mcclient.DefaultBehaviors()
	if cfg.Faults {
		b.Retries = 3
		b.RetryBackoff = 200 * simnet.Microsecond
		if cfg.Transport == cluster.UCRIB {
			// UCR is unreliable datagram-style at the AM layer: lost
			// packets need a client-side timeout to trigger the retry.
			// Socket transports model reliable streams and retransmit
			// below the client. Clean runs leave the timeout unset even
			// in UD mode — flow-control credits mean a lossless fabric
			// drops no datagrams, and worker clocks running ahead of a
			// client's would turn the virtual deadline into spurious
			// failures. UD retransmission is therefore only exercised
			// (and only vacuity-checked) under Faults.
			b.OpTimeout = 4 * simnet.Millisecond
		}
	}

	x := &executor{cfg: cfg, store: d.Server.Store(), deployment: d}
	for i := 0; i < sc.Clients; i++ {
		cl, err := d.NewClient(cfg.Transport, b)
		if err != nil {
			return nil, fmt.Errorf("memcheck: client %d: %w", i, err)
		}
		defer cl.Close()
		idx := i
		cl.MC.SetObserver(func(o mcclient.ObservedOp) {
			x.obs = append(x.obs, Observation{Client: idx, Op: o})
		})
		x.clients = append(x.clients, cl)
	}

	// Arm the recorder only now: connection setup is not part of the
	// checked history. The callback runs on server worker goroutines, so
	// the sink is mutex-guarded; Seq restores the total order afterwards.
	x.store.SetRecorder(func(r *memcached.OpRecord) {
		x.recMu.Lock()
		x.records = append(x.records, r)
		x.recMu.Unlock()
	})

	for i, op := range sc.Ops {
		if err := x.step(op); err != nil {
			return nil, fmt.Errorf("memcheck: op %d (%s): %w", i, formatOp(op, true), err)
		}
	}
	x.epilogue(sc)

	// Snapshot the client-side UD counters before teardown, then close:
	// lossy retries can leave duplicated requests still draining through
	// the server; Close joins the workers, so afterwards the history is
	// complete.
	var udGets, udRetx uint64
	for _, cl := range x.clients {
		if ut, ok := cl.MC.Transport(0).(*mcclient.UCRTransport); ok {
			g, r, _ := ut.UDStats()
			udGets += g
			udRetx += r
		}
	}
	for _, cl := range x.clients {
		cl.Close()
	}
	x.clients = nil
	d.Close()
	x.store.SetRecorder(nil)

	recs := x.records
	sortRecords(recs)
	return &runOutcome{
		Records: recs, Obs: x.obs,
		SRQDemux: d.Server.UCRSRQDemux(), UDGets: udGets, UDRetransmits: udRetx,
		BatchedDrains: d.Server.UCRBatchedDrains(),
		WriteReplies:  d.Server.UCRWriteReplies(),
	}, nil
}

type executor struct {
	cfg        Config
	deployment *cluster.Deployment
	store      *memcached.Store
	clients    []*cluster.Client

	recMu   sync.Mutex
	records []*memcached.OpRecord
	obs     []Observation
}

func sortRecords(recs []*memcached.OpRecord) {
	// Seq is a dense total order; plain comparison sort keeps this O(n log n).
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
}

// tolerable reports whether err is an outcome the configuration can
// produce on a healthy run.
func (x *executor) tolerable(err error) bool {
	if err == nil {
		return true
	}
	switch {
	case errors.Is(err, mcclient.ErrCacheMiss),
		errors.Is(err, mcclient.ErrNotStored),
		errors.Is(err, mcclient.ErrCASExists),
		errors.Is(err, mcclient.ErrBadValue),
		errors.Is(err, mcclient.ErrServerError):
		return true
	case errors.Is(err, mcclient.ErrServerDown):
		// Only a lossy fabric may lose operations.
		return x.cfg.Faults
	default:
		return false
	}
}

func (x *executor) step(op ScriptOp) error {
	cl := x.clients[op.Client%len(x.clients)]
	mc := cl.MC
	var err error
	switch op.Code {
	case OpSet:
		err = mc.Set(op.Key, op.Value, op.Flags, op.Exptime)
	case OpAdd:
		err = mc.Add(op.Key, op.Value, op.Flags, op.Exptime)
	case OpReplace:
		err = mc.Replace(op.Key, op.Value, op.Flags, op.Exptime)
	case OpAppend:
		err = mc.Append(op.Key, op.Value)
	case OpPrepend:
		err = mc.Prepend(op.Key, op.Value)
	case OpCas:
		err = x.stepCas(mc, op)
	case OpGet:
		_, _, _, err = mc.Get(op.Key)
	case OpMGet:
		_, err = mc.GetMulti(op.Keys)
	case OpDelete:
		err = mc.Delete(op.Key)
	case OpIncr:
		_, err = mc.Incr(op.Key, op.Delta)
	case OpDecr:
		_, err = mc.Decr(op.Key, op.Delta)
	case OpAdvance:
		cl.Clock.Advance(op.Advance)
		return nil
	case OpFlush:
		x.stepFlush()
		return nil
	case OpBurst:
		return x.stepBurst(cl, op)
	default:
		return fmt.Errorf("unknown op code %d", op.Code)
	}
	if !x.tolerable(err) {
		return err
	}
	return nil
}

// stepCas learns the key's current CAS id with a real get, then issues
// the cas — with the fresh id, or a deliberately wrong one.
func (x *executor) stepCas(mc *mcclient.Client, op ScriptOp) error {
	_, _, cas, err := mc.Get(op.Key)
	if err != nil && !x.tolerable(err) {
		return err
	}
	id := cas
	if errors.Is(err, mcclient.ErrCacheMiss) || id == 0 {
		id = 99991 // any id: cas on an absent key is NOT_FOUND regardless
	} else if op.Stale {
		id += 7777
	}
	err = mc.Cas(op.Key, op.Value, op.Flags, op.Exptime, id)
	if !x.tolerable(err) {
		return err
	}
	return nil
}

// stepFlush calls flush_all with a horizon strictly above every clock
// in the system, then moves every client past it. This keeps the flush
// outcome deterministic even when pipelined bursts have left the worker
// clocks at scheduler-dependent values: everything stored so far is
// below the horizon, everything after is above it — whatever the exact
// timestamps were.
func (x *executor) stepFlush() {
	maxT := simnet.Time(0)
	for _, cl := range x.clients {
		if t := cl.Clock.Now(); t > maxT {
			maxT = t
		}
	}
	for _, wc := range x.deployment.Server.WorkerClocks() {
		if wc > maxT {
			maxT = wc
		}
	}
	x.store.FlushAll(maxT)
	for _, cl := range x.clients {
		cl.Clock.AdvanceTo(maxT + simnet.Second)
	}
}

// stepBurst drives one pipelined window through the client's transport
// and synthesizes the observations from the settled futures (the
// blocking-path observer does not see pipelined ops).
func (x *executor) stepBurst(cl *cluster.Client, op ScriptOp) error {
	pr, ok := cl.MC.Transport(0).(mcclient.Pipeliner)
	if !ok {
		return fmt.Errorf("transport %s cannot pipeline", x.cfg.Transport)
	}
	w := op.Window
	if w < 1 {
		w = 1
	}
	pl := pr.Pipeline(w)
	clk := cl.Clock

	type pending struct {
		sub ScriptOp
		get *mcclient.GetFuture
		set *mcclient.SetFuture
		del *mcclient.BoolFuture
	}
	pend := make([]pending, 0, len(op.Sub))
	for _, sub := range op.Sub {
		p := pending{sub: sub}
		switch sub.Code {
		case OpSet:
			p.set = pl.StartSet(clk, sub.Key, sub.Flags, 0, sub.Value)
		case OpGet:
			p.get = pl.StartGet(clk, sub.Key)
		case OpDelete:
			p.del = pl.StartDelete(clk, sub.Key)
		default:
			return fmt.Errorf("burst sub-op %s not supported", opNames[sub.Code])
		}
		pend = append(pend, p)
	}
	if err := pl.Wait(clk); err != nil && !x.tolerable(err) {
		return err
	}
	for _, p := range pend {
		switch {
		case p.set != nil:
			res, err := p.set.Wait(clk)
			if !x.tolerable(err) {
				return err
			}
			x.obs = append(x.obs, Observation{Client: clientIndex(x, cl), Op: mcclient.ObservedOp{
				Kind: memcached.RecSet, Key: p.sub.Key, Value: p.sub.Value,
				Flags: p.sub.Flags, Res: res, Err: err,
			}})
		case p.get != nil:
			v, flags, cas, hit, err := p.get.Wait(clk)
			if !x.tolerable(err) {
				return err
			}
			x.obs = append(x.obs, Observation{Client: clientIndex(x, cl), Op: mcclient.ObservedOp{
				Kind: memcached.RecGet, Key: p.sub.Key, Value: append([]byte(nil), v...),
				Flags: flags, CAS: cas, Hit: hit, Err: err,
			}})
		case p.del != nil:
			hit, err := p.del.Wait(clk)
			if !x.tolerable(err) {
				return err
			}
			x.obs = append(x.obs, Observation{Client: clientIndex(x, cl), Op: mcclient.ObservedOp{
				Kind: memcached.RecDelete, Key: p.sub.Key, Hit: hit, Err: err,
			}})
		}
	}
	return nil
}

func clientIndex(x *executor, cl *cluster.Client) int {
	for i, c := range x.clients {
		if c == cl {
			return i
		}
	}
	return 0
}

// epilogue reads back every key the script could have touched, from one
// client, blocking — pinning down the final state of the store so
// latent divergence (e.g. a delete that did not delete) always shows up
// in the history.
func (x *executor) epilogue(sc Script) {
	keys := scriptKeys(sc)
	mc := x.clients[0].MC
	for _, k := range keys {
		_, _, _, _ = mc.Get(k)
	}
	if len(keys) > 0 {
		_, _ = mc.GetMulti(keys)
	}
}

// scriptKeys is the sorted union of keys a script touches.
func scriptKeys(sc Script) []string {
	set := make(map[string]struct{})
	var walk func(ops []ScriptOp)
	walk = func(ops []ScriptOp) {
		for _, op := range ops {
			if op.Key != "" {
				set[op.Key] = struct{}{}
			}
			for _, k := range op.Keys {
				set[k] = struct{}{}
			}
			walk(op.Sub)
		}
	}
	walk(sc.Ops)
	return sortKeys(set)
}

package memcheck

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/mcclient"
	"repro/internal/memcached"
)

// Cross-checking compares what the CLIENTS observed with what the
// ENGINE recorded, per key. The reference model alone cannot see a
// frontend or transport bug — a parser that drops flags, a codec that
// misroutes a reply — because the engine's own records are consistent
// with whatever (wrong) request reached it. Observations close that
// gap.
//
// On a clean fabric every client operation executes exactly once, so
// the per-key multisets of canonical elements must be EQUAL. On a lossy
// fabric a retried request may execute server-side more than once (the
// reply was lost, not the request), so the check weakens to
// containment: everything a client observed must appear in the server
// history.

// canonEl renders one operation as a canonical comparison element.
// Fields that differ legitimately between the two sides (timestamps,
// CAS ids on reads, item flags on reads — mget replies don't carry
// them) are excluded; fields a frontend could corrupt (store flags,
// exptime, values, results) are kept.
func canonObserved(o mcclient.ObservedOp) (string, bool) {
	oom := errors.Is(o.Err, mcclient.ErrServerError)
	if o.Err != nil && !oom {
		// Transport-level failure: the op may or may not have reached the
		// server; nothing to compare.
		return "", false
	}
	if o.OneSided {
		// A one-sided hit never ran on the server, so it has no record to
		// pair with; checkOneSided validates it against item history.
		return "", false
	}
	switch o.Kind {
	case memcached.RecGet:
		if o.Hit {
			return fmt.Sprintf("get|hit|%q", o.Value), true
		}
		return "get|miss", true
	case memcached.RecSet, memcached.RecAdd, memcached.RecReplace, memcached.RecCas:
		el := fmt.Sprintf("%s|%s|f%d|e%d", o.Kind, o.Res, o.Flags, o.Exptime)
		if o.Kind == memcached.RecCas {
			el += fmt.Sprintf("|c%d", o.CasReq)
		}
		if o.Res == memcached.Stored {
			el += fmt.Sprintf("|%q", o.Value)
		}
		return el, true
	case memcached.RecAppend, memcached.RecPrepend:
		return fmt.Sprintf("%s|%s|%q", o.Kind, o.Res, o.Value), true
	case memcached.RecDelete:
		return fmt.Sprintf("del|hit=%v", o.Hit), true
	case memcached.RecIncr, memcached.RecDecr:
		return fmt.Sprintf("%s|d%d|hit=%v|bad=%v|oom=%v|%d", o.Kind, o.Delta, o.Hit, o.Bad, oom, o.Num), true
	default:
		return "", false
	}
}

func canonRecord(r *memcached.OpRecord) (string, bool) {
	switch r.Kind {
	case memcached.RecGet:
		if r.Hit {
			return fmt.Sprintf("get|hit|%q", r.Value), true
		}
		return "get|miss", true
	case memcached.RecSet, memcached.RecAdd, memcached.RecReplace, memcached.RecCas:
		el := fmt.Sprintf("%s|%s|f%d|e%d", r.Kind, r.Res, r.Flags, r.Exptime)
		if r.Kind == memcached.RecCas {
			el += fmt.Sprintf("|c%d", r.CasReq)
		}
		if r.Res == memcached.Stored {
			el += fmt.Sprintf("|%q", r.Value)
		}
		return el, true
	case memcached.RecAppend, memcached.RecPrepend:
		// The client sends the argument; the engine records both the
		// argument and the composed result. Compare the argument.
		return fmt.Sprintf("%s|%s|%q", r.Kind, r.Res, r.Arg), true
	case memcached.RecDelete:
		return fmt.Sprintf("del|hit=%v", r.Hit), true
	case memcached.RecIncr, memcached.RecDecr:
		return fmt.Sprintf("%s|d%d|hit=%v|bad=%v|oom=%v|%d", r.Kind, r.Delta, r.Hit, r.Bad, r.OOM, r.NewNum), true
	default:
		// Internal transitions (evict/expire/flush) and touch have no
		// client-side counterpart in the harness.
		return "", false
	}
}

// itemState renders one (value, cas, flags) item version for the
// one-sided containment check.
func itemState(value []byte, cas uint64, flags uint32) string {
	return fmt.Sprintf("%q|c%d|f%d", value, cas, flags)
}

// recordStates extracts every item version the history put live, per
// key: successful stores (set/add/replace/cas/append/prepend), incr and
// decr results, and get hits (which re-attest the current version).
func recordStates(recs []*memcached.OpRecord) map[string]map[string]bool {
	states := make(map[string]map[string]bool)
	add := func(key string, value []byte, cas uint64, flags uint32) {
		m := states[key]
		if m == nil {
			m = make(map[string]bool)
			states[key] = m
		}
		m[itemState(value, cas, flags)] = true
	}
	for _, r := range recs {
		switch r.Kind {
		case memcached.RecSet, memcached.RecAdd, memcached.RecReplace,
			memcached.RecCas, memcached.RecAppend, memcached.RecPrepend:
			if r.Res == memcached.Stored {
				add(r.Key, r.Value, r.NewCAS, r.Flags)
			}
		case memcached.RecIncr, memcached.RecDecr:
			if r.Hit && !r.Bad && !r.OOM {
				add(r.Key, r.Value, r.NewCAS, r.Flags)
			}
		case memcached.RecGet:
			if r.Hit {
				add(r.Key, r.Value, r.OldCAS, r.Flags)
			}
		}
	}
	return states
}

// checkOneSided validates every one-sided GET hit by containment: the
// (value, cas, flags) triple the client's RDMA read assembled must be an
// item version the server history actually produced. Equality against a
// specific record is impossible — the whole point of the path is that no
// server code runs — and the seqlock's guarantee is exactly this: the
// pairing was live at some instant. A stale-pairing bug (value from one
// version, cas from another, as mut_onesided_stale plants) produces a
// triple that never existed and fails here.
func checkOneSided(recs []*memcached.OpRecord, obs []Observation) *Violation {
	var states map[string]map[string]bool
	for _, o := range obs {
		if !o.Op.OneSided || !o.Op.Hit {
			continue
		}
		if states == nil {
			states = recordStates(recs)
		}
		el := itemState(o.Op.Value, o.Op.CAS, o.Op.Flags)
		if !states[o.Op.Key][el] {
			return &Violation{Msg: fmt.Sprintf(
				"onesided %q: client read %s, an item version the server never produced", o.Op.Key, el)}
		}
	}
	return nil
}

// CrossCheck compares observations against the recorded history.
func CrossCheck(recs []*memcached.OpRecord, obs []Observation, lossy bool) *Violation {
	if v := checkOneSided(recs, obs); v != nil {
		return v
	}
	server := make(map[string][]string) // key → canonical elements
	for _, r := range recs {
		if el, ok := canonRecord(r); ok {
			server[r.Key] = append(server[r.Key], el)
		}
	}
	client := make(map[string][]string)
	for _, o := range obs {
		if el, ok := canonObserved(o.Op); ok {
			client[o.Op.Key] = append(client[o.Op.Key], el)
		}
	}

	if lossy {
		// Containment: every client-visible outcome must be explained by
		// at least one server-side execution.
		for _, key := range sortKeys(client) {
			have := make(map[string]int)
			for _, el := range server[key] {
				have[el]++
			}
			for _, el := range client[key] {
				if have[el] == 0 {
					return &Violation{Msg: fmt.Sprintf(
						"crosscheck %q: client observed %s, server never recorded it", key, el)}
				}
			}
		}
		return nil
	}

	keys := make(map[string]struct{})
	for k := range server {
		keys[k] = struct{}{}
	}
	for k := range client {
		keys[k] = struct{}{}
	}
	for _, key := range sortKeys(keys) {
		s := append([]string(nil), server[key]...)
		c := append([]string(nil), client[key]...)
		sort.Strings(s)
		sort.Strings(c)
		if d := firstDiff(s, c); d != "" {
			return &Violation{Msg: fmt.Sprintf("crosscheck %q: %s", key, d)}
		}
	}
	return nil
}

func firstDiff(server, client []string) string {
	i, j := 0, 0
	for i < len(server) && j < len(client) {
		switch {
		case server[i] == client[j]:
			i++
			j++
		case server[i] < client[j]:
			return fmt.Sprintf("server recorded %s with no matching client observation", server[i])
		default:
			return fmt.Sprintf("client observed %s with no matching server record", client[j])
		}
	}
	if i < len(server) {
		return fmt.Sprintf("server recorded %s with no matching client observation", server[i])
	}
	if j < len(client) {
		return fmt.Sprintf("client observed %s with no matching server record", client[j])
	}
	return ""
}

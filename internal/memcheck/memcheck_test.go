package memcheck

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/memcached"
)

var transports = []cluster.Transport{cluster.UCRIB, cluster.IPoIB}

func requirePass(t *testing.T, res *Result) {
	t.Helper()
	if res.Violation != nil {
		if res.Report != "" {
			t.Log(res.Report)
		}
		t.Fatalf("unexpected violation: %s", res.Violation.Error())
	}
	if len(res.History) == 0 {
		t.Fatal("no history recorded")
	}
}

func TestScriptRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for _, nb := range []bool{false, true} {
			sc := Generate(seed, GenConfig{Clients: 3, Ops: 200, NoBursts: nb})
			text := FormatScript(sc)
			back, err := ParseScript(text)
			if err != nil {
				t.Fatalf("seed %d: parse: %v", seed, err)
			}
			if got := FormatScript(back); got != text {
				t.Fatalf("seed %d: round trip diverged", seed)
			}
		}
	}
}

func TestCleanSeeds(t *testing.T) {
	if memcached.ActiveMutations() != nil {
		t.Skip("store mutations active")
	}
	for _, tr := range transports {
		var batched uint64
		for seed := uint64(1); seed <= 4; seed++ {
			res := Run(Config{Transport: tr, Seed: seed, Ops: 150})
			if res.Violation != nil {
				t.Errorf("%s seed %d:\n%s", tr, seed, res.Report)
			}
			batched += res.BatchedDrains
		}
		// Vacuity guard for the batch-scheduled serving loop: the default
		// mix emits pipelined bursts, so UCR workers must have harvested
		// ≥2 completions in at least one drain somewhere in the sweep —
		// zero would mean the checker exercised a request-at-a-time loop.
		if tr == cluster.UCRIB && batched == 0 {
			t.Error("UCR sweep with bursts recorded no batched CQ drains (batch path vacuous)")
		}
	}
}

// TestOneSidedSeeds sweeps the one-sided GET path, clean and lossy, and
// demands the runs actually exercised it (a sweep where every get fell
// back to the AM path would validate nothing).
func TestOneSidedSeeds(t *testing.T) {
	if memcached.ActiveMutations() != nil {
		t.Skip("store mutations active")
	}
	for _, faults := range []bool{false, true} {
		oneSided := 0
		for seed := uint64(1); seed <= 4; seed++ {
			res := Run(Config{Transport: cluster.UCRIB, Seed: seed, Ops: 150, Faults: faults, OneSided: true})
			if res.Violation != nil {
				t.Errorf("faults=%v seed %d:\n%s", faults, seed, res.Report)
			}
			for _, o := range res.Obs {
				if o.Op.OneSided {
					oneSided++
				}
			}
		}
		if oneSided == 0 {
			t.Errorf("faults=%v: no observation took the one-sided path", faults)
		}
	}
}

// TestSRQSeeds sweeps shared-SRQ serving, clean and lossy, with a
// vacuity guard on the server's demux counter: a sweep where no
// completion was routed through the shared queue validated nothing.
func TestSRQSeeds(t *testing.T) {
	if memcached.ActiveMutations() != nil {
		t.Skip("store mutations active")
	}
	for _, faults := range []bool{false, true} {
		var demux uint64
		for seed := uint64(1); seed <= 4; seed++ {
			res := Run(Config{Transport: cluster.UCRIB, Seed: seed, Ops: 150, Faults: faults, SRQ: true})
			if res.Violation != nil {
				t.Errorf("faults=%v seed %d:\n%s", faults, seed, res.Report)
			}
			demux += res.SRQDemux
		}
		if demux == 0 {
			t.Errorf("faults=%v: no completion was demuxed off the shared SRQ", faults)
		}
	}
}

// TestUDSeeds sweeps the hybrid UD small-get mode. Clean runs must
// route gets over the UD endpoint; lossy runs must additionally see
// client-side retransmissions (silent datagram loss is the whole point
// of the UD reliability machinery).
func TestUDSeeds(t *testing.T) {
	if memcached.ActiveMutations() != nil {
		t.Skip("store mutations active")
	}
	for _, faults := range []bool{false, true} {
		var gets, retx uint64
		for seed := uint64(1); seed <= 4; seed++ {
			res := Run(Config{Transport: cluster.UCRIB, Seed: seed, Ops: 150, Faults: faults, UD: true})
			if res.Violation != nil {
				t.Errorf("faults=%v seed %d:\n%s", faults, seed, res.Report)
			}
			gets += res.UDGets
			retx += res.UDRetransmits
		}
		if gets == 0 {
			t.Errorf("faults=%v: no request rode the UD endpoint", faults)
		}
		if faults && retx == 0 {
			t.Error("faults=true: no UD retransmission happened (vacuous lossy sweep)")
		}
	}
}

func TestBlockingTTLSeeds(t *testing.T) {
	if memcached.ActiveMutations() != nil {
		t.Skip("store mutations active")
	}
	for _, tr := range transports {
		for seed := uint64(10); seed <= 12; seed++ {
			res := Run(Config{Transport: tr, Seed: seed, Ops: 150, NoBursts: true})
			if res.Violation != nil {
				t.Errorf("%s seed %d:\n%s", tr, seed, res.Report)
			}
		}
	}
}

func TestLossySeeds(t *testing.T) {
	if memcached.ActiveMutations() != nil {
		t.Skip("store mutations active")
	}
	for _, tr := range transports {
		for seed := uint64(20); seed <= 22; seed++ {
			res := Run(Config{Transport: tr, Seed: seed, Ops: 150, Faults: true})
			if res.Violation != nil {
				t.Errorf("%s seed %d:\n%s", tr, seed, res.Report)
			}
		}
	}
}

func TestPressureSeeds(t *testing.T) {
	if memcached.ActiveMutations() != nil {
		t.Skip("store mutations active")
	}
	for _, tr := range transports {
		for seed := uint64(30); seed <= 31; seed++ {
			res := Run(Config{Transport: tr, Seed: seed, Ops: 300, Pressure: true})
			if res.Violation != nil {
				t.Errorf("%s seed %d:\n%s", tr, seed, res.Report)
			}
			evicts := 0
			for _, r := range res.History {
				if r.Kind == memcached.RecEvict {
					evicts++
				}
			}
			if evicts == 0 {
				t.Errorf("%s seed %d: pressure run recorded no evictions", tr, seed)
			}
		}
	}
}

// TestHistoryDeterminism: two executions of the same seed must produce
// the same history. Blocking workloads agree byte-for-byte including
// every virtual timestamp; pipelined bursts make timestamps scheduler-
// dependent, so the default mix is compared with times stripped (the
// ORDER of transitions is still fixed).
//
// Lossy runs are deliberately NOT here: a reply that arrives after the
// client's op timeout leaves the retry's duplicate request draining
// through the server concurrently with later script ops, so even the
// record ORDER is scheduler-dependent. The model checks whatever
// interleaving was recorded, so lossy runs stay sound — just not
// byte-reproducible.
func TestHistoryDeterminism(t *testing.T) {
	if memcached.ActiveMutations() != nil {
		t.Skip("store mutations active")
	}
	for _, tr := range transports {
		for _, mode := range []struct {
			name      string
			cfg       Config
			withTimes bool
		}{
			{"blocking", Config{Transport: tr, Seed: 40, Ops: 150, NoBursts: true}, true},
			{"bursts", Config{Transport: tr, Seed: 42, Ops: 150}, false},
		} {
			a := Run(mode.cfg)
			requirePass(t, a)
			b := Run(mode.cfg)
			requirePass(t, b)
			ha := FormatHistory(a.History, mode.withTimes)
			hb := FormatHistory(b.History, mode.withTimes)
			if ha != hb {
				t.Errorf("%s %s: histories differ across identical runs\n%s", tr, mode.name, firstLineDiff(ha, hb))
			}
		}
	}
}

func firstLineDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return "line " + la[i] + "\n  vs " + lb[i]
		}
	}
	return "lengths differ"
}

// TestMutationsCaught is the checker's own validation: it only runs in
// a `-tags mut_*` build (see mutations.go) and demands that the active
// mutation is detected within a few seeds on at least one transport.
func TestMutationsCaught(t *testing.T) {
	muts := memcached.ActiveMutations()
	if muts == nil {
		t.Skip("no store mutations active; run with -tags mut_append_nocas (etc.)")
	}
	// Some mutations only fire on an opt-in datapath, so arm it (on the
	// UCR transport, the only one that has them). mut_ud_dup_ack needs
	// late duplicate replies to exist at all, which takes UD traffic
	// plus the timeouts of a lossy fabric.
	oneSided, srq, ud, udFaults := false, false, false, false
	for _, m := range muts {
		switch m {
		case "mut_onesided_stale":
			oneSided = true
		case "mut_srq_misroute":
			srq = true
		case "mut_ud_dup_ack":
			ud = true
			udFaults = true
		}
	}
	for seed := uint64(1); seed <= 10; seed++ {
		for _, tr := range transports {
			for _, nb := range []bool{false, true} {
				ucr := tr == cluster.UCRIB
				res := Run(Config{Transport: tr, Seed: seed, Ops: 200, NoBursts: nb,
					Faults:   udFaults && ucr,
					OneSided: oneSided && ucr,
					SRQ:      srq && ucr,
					UD:       ud && ucr})
				if res.Violation == nil {
					continue
				}
				if !strings.Contains(res.Report, "seed=") || !strings.Contains(res.Report, "replay:") {
					t.Fatalf("report missing replay info:\n%s", res.Report)
				}
				if res.Shrunk == nil || len(res.Shrunk.Ops) == 0 || len(res.Shrunk.Ops) > len(res.Script.Ops) {
					t.Fatalf("bad shrunk script")
				}
				t.Logf("mutation %v caught: transport=%s seed=%d shrunk to %d ops", muts, tr, seed, len(res.Shrunk.Ops))
				return
			}
		}
	}
	t.Fatalf("mutation %v not detected in 10 seeds on any transport", muts)
}

// TestModelCatchesTamperedHistory forges divergences into a genuine
// recorded history and demands the model flags each one — a cheap
// self-test of the checker that needs no mutation build.
func TestModelCatchesTamperedHistory(t *testing.T) {
	if memcached.ActiveMutations() != nil {
		t.Skip("store mutations active")
	}
	base := Run(Config{Transport: cluster.IPoIB, Seed: 7, Ops: 150})
	requirePass(t, base)

	tamper := func(name string, f func([]*memcached.OpRecord) bool) {
		recs := make([]*memcached.OpRecord, len(base.History))
		for i, r := range base.History {
			c := *r
			recs[i] = &c
		}
		if !f(recs) {
			t.Fatalf("%s: no applicable record found in history", name)
		}
		if CheckModel(recs) == nil {
			t.Errorf("%s: tampered history passed the model", name)
		}
	}

	tamper("stale-get-value", func(recs []*memcached.OpRecord) bool {
		for _, r := range recs {
			if r.Kind == memcached.RecGet && r.Hit {
				r.Value = append([]byte(nil), r.Value...)
				r.Value[0] ^= 0xff
				return true
			}
		}
		return false
	})
	tamper("reused-cas", func(recs []*memcached.OpRecord) bool {
		var first uint64
		for _, r := range recs {
			if r.Kind == memcached.RecSet && r.Res == memcached.Stored {
				if first == 0 {
					first = r.NewCAS
					continue
				}
				r.NewCAS = first
				return true
			}
		}
		return false
	})
	tamper("wrong-expiry", func(recs []*memcached.OpRecord) bool {
		for _, r := range recs {
			if r.Kind == memcached.RecSet && r.Res == memcached.Stored {
				r.ExpireAt = r.SetAt + 1
				return true
			}
		}
		return false
	})
	tamper("phantom-delete", func(recs []*memcached.OpRecord) bool {
		for _, r := range recs {
			if r.Kind == memcached.RecDelete && !r.Hit {
				r.Hit = true
				r.OldCAS = 123456789
				return true
			}
		}
		return false
	})
}

// TestShrink drives the reducer with a synthetic predicate: the
// "failure" needs a set of k03 followed (anywhere) by a delete of k03.
// The shrunk script must be exactly those two ops.
func TestShrink(t *testing.T) {
	sc := Generate(99, GenConfig{Clients: 3, Ops: 120})
	hasPair := func(s Script) bool {
		seenSet := false
		for _, op := range s.Ops {
			if op.Key != "k03" {
				continue
			}
			if op.Code == OpSet {
				seenSet = true
			}
			if op.Code == OpDelete && seenSet {
				return true
			}
		}
		return false
	}
	if !hasPair(sc) {
		// Make the predicate satisfiable regardless of the seed's luck.
		sc.Ops = append(sc.Ops, ScriptOp{Code: OpSet, Key: "k03", Value: []byte("x")},
			ScriptOp{Client: 1, Code: OpDelete, Key: "k03"})
	}
	out := Shrink(sc, hasPair, 400)
	if !hasPair(out) {
		t.Fatal("shrunk script no longer fails")
	}
	if len(out.Ops) > 4 {
		t.Errorf("shrunk to %d ops, want <= 4:\n%s", len(out.Ops), FormatScript(out))
	}
	if out.Clients != 1 {
		t.Errorf("clients not collapsed: %d", out.Clients)
	}
}

func TestReplayFromScriptText(t *testing.T) {
	if memcached.ActiveMutations() != nil {
		t.Skip("store mutations active")
	}
	cfg := Config{Transport: cluster.UCRIB, Seed: 55, Ops: 80}
	sc := Generate(cfg.Seed, GenConfig{Clients: cfg.Clients, Ops: cfg.Ops})
	text := FormatScript(sc)
	back, err := ParseScript(text)
	if err != nil {
		t.Fatal(err)
	}
	a := RunScript(sc, cfg)
	requirePass(t, a)
	b := RunScript(back, cfg)
	requirePass(t, b)
	if FormatHistory(a.History, false) != FormatHistory(b.History, false) {
		t.Error("replay from formatted script diverged from original")
	}
}

package memcheck

import (
	"bytes"
	"fmt"
	"strconv"

	"repro/internal/memcached"
	"repro/internal/simnet"
)

// Violation is one reference-model disagreement (or cross-check
// mismatch), anchored at the offending record's sequence number.
type Violation struct {
	Seq uint64 // 0 when not tied to one record (cross-check)
	Msg string
}

func (v *Violation) Error() string {
	if v.Seq != 0 {
		return fmt.Sprintf("seq %d: %s", v.Seq, v.Msg)
	}
	return v.Msg
}

// modelItem mirrors one live cache entry.
type modelItem struct {
	value    []byte
	flags    uint32
	cas      uint64
	expireAt simnet.Time
	setAt    simnet.Time
}

func (m *modelItem) live(now, horizon simnet.Time) bool {
	if m.expireAt != 0 && m.expireAt <= now {
		return false
	}
	if horizon != 0 && m.setAt < horizon {
		return false
	}
	return true
}

// maxRelativeExpiry mirrors the engine's 30-day relative/absolute
// exptime cutover.
const maxRelativeExpiry = 60 * 60 * 24 * 30

func modelExpiry(exptime int64, setAt simnet.Time) simnet.Time {
	switch {
	case exptime == 0:
		return 0
	case exptime <= maxRelativeExpiry:
		return setAt + simnet.Time(exptime)*simnet.Second
	default:
		return simnet.Time(exptime) * simnet.Second
	}
}

// model replays the engine's recorded history against plain-map
// semantics. The input is the Seq-sorted record list — a total order,
// because every transition is emitted under its shard lock — so the
// whole check is one fold over the history.
type model struct {
	items   map[string]*modelItem
	horizon simnet.Time
	casSeen map[uint64]bool

	// lastEvict holds the tolerance window for self-eviction: an
	// allocation inside replace/cas/concat/incr can evict the very item
	// the op just looked up (the engine's victim scan does not skip the
	// key being operated on). The evict record immediately precedes the
	// op's own record in the per-key subsequence (both happen under one
	// shard-lock critical section), so the window closes at the next
	// record for that key.
	lastEvict map[string]*modelItem
}

// CheckModel replays recs and returns the first divergence, or nil.
func CheckModel(recs []*memcached.OpRecord) *Violation {
	m := &model{
		items:     make(map[string]*modelItem),
		casSeen:   make(map[uint64]bool),
		lastEvict: make(map[string]*modelItem),
	}
	for _, r := range recs {
		if v := m.apply(r); v != nil {
			return v
		}
	}
	return nil
}

func fail(r *memcached.OpRecord, format string, args ...any) *Violation {
	return &Violation{Seq: r.Seq, Msg: fmt.Sprintf("%s %q: ", r.Kind, r.Key) + fmt.Sprintf(format, args...)}
}

func (m *model) apply(r *memcached.OpRecord) *Violation {
	var v *Violation
	switch r.Kind {
	case RecGet:
		v = m.applyGet(r)
	case RecSet:
		v = m.applySet(r)
	case RecAdd:
		v = m.applyAdd(r)
	case RecReplace:
		v = m.applyReplace(r)
	case RecCas:
		v = m.applyCas(r)
	case RecAppend, RecPrepend:
		v = m.applyConcat(r)
	case RecDelete:
		v = m.applyDelete(r)
	case RecIncr, RecDecr:
		v = m.applyIncrDecr(r)
	case RecTouch:
		v = m.applyTouch(r)
	case RecFlushAll:
		if r.Horizon != r.Now+1 {
			return fail(r, "horizon %d, want now+1 = %d", r.Horizon, r.Now+1)
		}
		if r.Horizon > m.horizon {
			m.horizon = r.Horizon
		}
		return nil
	case RecEvict:
		return m.applyEvict(r)
	case RecExpire:
		v = m.applyExpire(r)
	default:
		return fail(r, "unknown record kind %d", r.Kind)
	}
	// Any explicit operation on the key closes its self-eviction window
	// (the evict record is emitted in the same critical section as the
	// op that caused it, so adjacency in the per-key subsequence is
	// guaranteed).
	delete(m.lastEvict, r.Key)
	return v
}

// lookup returns the key's live entry, or nil.
func (m *model) lookup(key string, now simnet.Time) *modelItem {
	it := m.items[key]
	if it == nil || !it.live(now, m.horizon) {
		return nil
	}
	return it
}

// checkNewCAS enforces the one global CAS invariant the record order
// supports: every assigned id is globally unique. (Monotonicity in Seq
// order does NOT hold: UCR pipelined sets draw their id at header
// allocation but commit in per-endpoint FIFO order, so two endpoints'
// commits can sequence opposite to their ids.)
func (m *model) checkNewCAS(r *memcached.OpRecord) *Violation {
	if r.NewCAS == 0 {
		return fail(r, "stored without assigning a CAS id")
	}
	if m.casSeen[r.NewCAS] {
		return fail(r, "CAS id %d reused", r.NewCAS)
	}
	m.casSeen[r.NewCAS] = true
	return nil
}

// storeFresh installs the record's resulting item after validating the
// derived fields a fresh store must satisfy.
func (m *model) storeFresh(r *memcached.OpRecord) *Violation {
	if v := m.checkNewCAS(r); v != nil {
		return v
	}
	if r.SetAt > r.Now {
		return fail(r, "setAt %d after op time %d", r.SetAt, r.Now)
	}
	if want := modelExpiry(r.Exptime, r.SetAt); r.ExpireAt != want {
		return fail(r, "expireAt %d, want %d (exptime %d at %d)", r.ExpireAt, want, r.Exptime, r.SetAt)
	}
	m.items[r.Key] = &modelItem{
		value: r.Value, flags: r.Flags, cas: r.NewCAS,
		expireAt: r.ExpireAt, setAt: r.SetAt,
	}
	return nil
}

// storeFailureOK reports whether a non-Stored result is one a store-
// class op may legitimately produce after its condition passed (the
// allocation failed).
func storeFailureOK(res memcached.StoreResult) bool {
	return res == memcached.TooLarge || res == memcached.OOM
}

func (m *model) applyGet(r *memcached.OpRecord) *Violation {
	it := m.lookup(r.Key, r.Now)
	if !r.Hit {
		if it != nil {
			return fail(r, "miss, but model holds live value %q (cas %d)", it.value, it.cas)
		}
		return nil
	}
	if it == nil {
		if m.items[r.Key] != nil {
			return fail(r, "hit returned expired/flushed item (value %q)", r.Value)
		}
		return fail(r, "hit for a key the model does not hold")
	}
	if !bytes.Equal(r.Value, it.value) {
		return fail(r, "stale value %q, model %q", r.Value, it.value)
	}
	if r.Flags != it.flags {
		return fail(r, "flags %d, model %d", r.Flags, it.flags)
	}
	if r.OldCAS != it.cas {
		return fail(r, "cas %d, model %d", r.OldCAS, it.cas)
	}
	return nil
}

func (m *model) applySet(r *memcached.OpRecord) *Violation {
	if r.Res != memcached.Stored {
		if !storeFailureOK(r.Res) {
			return fail(r, "unexpected result %s", r.Res)
		}
		return nil
	}
	return m.storeFresh(r)
}

func (m *model) applyAdd(r *memcached.OpRecord) *Violation {
	it := m.lookup(r.Key, r.Now)
	switch r.Res {
	case memcached.Stored:
		if it != nil {
			return fail(r, "add clobbered live value %q", it.value)
		}
		return m.storeFresh(r)
	case memcached.NotStored:
		if it == nil {
			return fail(r, "add refused, but model holds no live value")
		}
		return nil
	default:
		if !storeFailureOK(r.Res) {
			return fail(r, "unexpected result %s", r.Res)
		}
		return nil
	}
}

func (m *model) applyReplace(r *memcached.OpRecord) *Violation {
	it := m.lookup(r.Key, r.Now)
	switch r.Res {
	case memcached.Stored:
		// The replace's own allocation may have just evicted the looked-
		// up item (self-eviction); the preceding evict record opened the
		// tolerance window.
		if it == nil && m.lastEvict[r.Key] == nil {
			return fail(r, "replace stored, but model holds no live value")
		}
		return m.storeFresh(r)
	case memcached.NotStored:
		if it != nil {
			return fail(r, "replace refused, but model holds live value %q", it.value)
		}
		return nil
	default:
		if !storeFailureOK(r.Res) {
			return fail(r, "unexpected result %s", r.Res)
		}
		return nil
	}
}

func (m *model) applyCas(r *memcached.OpRecord) *Violation {
	it := m.lookup(r.Key, r.Now)
	switch r.Res {
	case memcached.Stored:
		switch {
		case it != nil:
			if it.cas != r.CasReq {
				return fail(r, "cas stored with id %d, model holds %d", r.CasReq, it.cas)
			}
		case m.lastEvict[r.Key] != nil:
			if m.lastEvict[r.Key].cas != r.CasReq {
				return fail(r, "cas stored with id %d after eviction of cas %d", r.CasReq, m.lastEvict[r.Key].cas)
			}
		default:
			return fail(r, "cas stored, but model holds no live value")
		}
		return m.storeFresh(r)
	case memcached.Exists:
		if it == nil {
			return fail(r, "cas EXISTS, but model holds no live value")
		}
		if it.cas == r.CasReq {
			return fail(r, "cas refused although id %d matches", r.CasReq)
		}
		return nil
	case memcached.NotFound:
		if it != nil {
			return fail(r, "cas NOT_FOUND, but model holds live value %q (cas %d)", it.value, it.cas)
		}
		return nil
	default:
		if !storeFailureOK(r.Res) {
			return fail(r, "unexpected result %s", r.Res)
		}
		return nil
	}
}

func (m *model) applyConcat(r *memcached.OpRecord) *Violation {
	it := m.lookup(r.Key, r.Now)
	switch r.Res {
	case memcached.NotStored:
		if it != nil {
			return fail(r, "refused, but model holds live value %q", it.value)
		}
		return nil
	case memcached.Stored:
	default:
		if !storeFailureOK(r.Res) {
			return fail(r, "unexpected result %s", r.Res)
		}
		// Allocation failure after the lookup succeeded; the old value
		// stays (or was self-evicted — either way no state change here).
		return nil
	}

	old := it
	checkedInherit := true
	if old == nil {
		ev := m.lastEvict[r.Key]
		if ev == nil || ev.cas != r.OldCAS {
			return fail(r, "stored, but model holds no live value")
		}
		old = ev
		checkedInherit = false // evicted snapshot has no expiry/flags context worth enforcing
	}
	if old.cas != r.OldCAS {
		return fail(r, "old cas %d, model %d", r.OldCAS, old.cas)
	}
	if !bytes.Equal(r.OldValue, old.value) {
		return fail(r, "old value %q, model %q", r.OldValue, old.value)
	}
	var want []byte
	if r.Kind == RecPrepend {
		want = append(append([]byte{}, r.Arg...), old.value...)
	} else {
		want = append(append([]byte{}, old.value...), r.Arg...)
	}
	if !bytes.Equal(r.Value, want) {
		return fail(r, "result %q, want %q", r.Value, want)
	}
	if checkedInherit {
		if r.ExpireAt != old.expireAt {
			return fail(r, "expiry %d not inherited (model %d)", r.ExpireAt, old.expireAt)
		}
		if r.Flags != old.flags {
			return fail(r, "flags %d not inherited (model %d)", r.Flags, old.flags)
		}
	}
	if v := m.checkNewCAS(r); v != nil {
		return v
	}
	m.items[r.Key] = &modelItem{
		value: r.Value, flags: r.Flags, cas: r.NewCAS,
		expireAt: r.ExpireAt, setAt: r.SetAt,
	}
	return nil
}

func (m *model) applyDelete(r *memcached.OpRecord) *Violation {
	it := m.lookup(r.Key, r.Now)
	if !r.Hit {
		if it != nil {
			return fail(r, "miss, but model holds live value %q", it.value)
		}
		return nil
	}
	if it == nil {
		return fail(r, "deleted a key the model does not hold live")
	}
	if r.OldCAS != it.cas {
		return fail(r, "deleted cas %d, model %d", r.OldCAS, it.cas)
	}
	delete(m.items, r.Key)
	return nil
}

func (m *model) applyIncrDecr(r *memcached.OpRecord) *Violation {
	it := m.lookup(r.Key, r.Now)
	if !r.Hit {
		if it != nil {
			return fail(r, "miss, but model holds live value %q", it.value)
		}
		return nil
	}
	old := it
	tolerated := false
	if old == nil {
		ev := m.lastEvict[r.Key]
		if ev == nil || ev.cas != r.OldCAS {
			return fail(r, "hit, but model holds no live value")
		}
		old = ev
		tolerated = true
	}
	if r.OldCAS != old.cas {
		return fail(r, "old cas %d, model %d", r.OldCAS, old.cas)
	}
	if r.Bad {
		if _, err := strconv.ParseUint(string(old.value), 10, 64); err == nil {
			return fail(r, "CLIENT_ERROR on numeric value %q", old.value)
		}
		return nil
	}
	cur, err := strconv.ParseUint(string(old.value), 10, 64)
	if err != nil {
		return fail(r, "arith on non-numeric value %q", old.value)
	}
	if r.OOM {
		// Grow failed; the old item stays (unless self-evicted, which the
		// evict record already applied).
		return nil
	}
	var want uint64
	if r.Kind == RecIncr {
		want = cur + r.Delta // wraps at 2^64, like memcached
	} else if r.Delta > cur {
		want = 0
	} else {
		want = cur - r.Delta
	}
	if r.NewNum != want {
		return fail(r, "result %d, want %d (%d %s %d)", r.NewNum, want, cur, r.Kind, r.Delta)
	}
	if string(r.Value) != strconv.FormatUint(want, 10) {
		return fail(r, "stored text %q, want %q", r.Value, strconv.FormatUint(want, 10))
	}
	if v := m.checkNewCAS(r); v != nil {
		return v
	}
	if !tolerated {
		if r.ExpireAt != old.expireAt {
			return fail(r, "expiry %d not preserved (model %d)", r.ExpireAt, old.expireAt)
		}
		if r.SetAt != old.setAt && r.SetAt != r.Now {
			return fail(r, "setAt %d: neither preserved (%d) nor reset to now (%d)", r.SetAt, old.setAt, r.Now)
		}
	}
	m.items[r.Key] = &modelItem{
		value: r.Value, flags: r.Flags, cas: r.NewCAS,
		expireAt: r.ExpireAt, setAt: r.SetAt,
	}
	return nil
}

func (m *model) applyTouch(r *memcached.OpRecord) *Violation {
	it := m.lookup(r.Key, r.Now)
	if !r.Hit {
		if it != nil {
			return fail(r, "miss, but model holds live value %q", it.value)
		}
		return nil
	}
	if it == nil {
		return fail(r, "touched a key the model does not hold live")
	}
	if r.OldCAS != it.cas {
		return fail(r, "touched cas %d, model %d", r.OldCAS, it.cas)
	}
	if want := modelExpiry(r.Exptime, r.Now); r.ExpireAt != want {
		return fail(r, "expireAt %d, want %d", r.ExpireAt, want)
	}
	it.expireAt = r.ExpireAt
	return nil
}

func (m *model) applyEvict(r *memcached.OpRecord) *Violation {
	// Eviction may reap any PRESENT entry, live or expired — presence
	// and identity are what the model can check.
	it := m.items[r.Key]
	if it == nil {
		return fail(r, "evicted a key the model does not hold")
	}
	if r.OldCAS != it.cas {
		return fail(r, "evicted cas %d, model %d", r.OldCAS, it.cas)
	}
	if !bytes.Equal(r.OldValue, it.value) {
		return fail(r, "evicted value %q, model %q", r.OldValue, it.value)
	}
	delete(m.items, r.Key)
	m.lastEvict[r.Key] = it
	return nil
}

func (m *model) applyExpire(r *memcached.OpRecord) *Violation {
	it := m.items[r.Key]
	if it == nil {
		return fail(r, "reaped a key the model does not hold")
	}
	if r.OldCAS != it.cas {
		return fail(r, "reaped cas %d, model %d", r.OldCAS, it.cas)
	}
	if it.live(r.Now, m.horizon) {
		return fail(r, "reaped a live item (expireAt %d, setAt %d, now %d, horizon %d)",
			it.expireAt, it.setAt, r.Now, m.horizon)
	}
	delete(m.items, r.Key)
	return nil
}

// Kind aliases so the checker reads without the package qualifier.
const (
	RecGet      = memcached.RecGet
	RecSet      = memcached.RecSet
	RecAdd      = memcached.RecAdd
	RecReplace  = memcached.RecReplace
	RecAppend   = memcached.RecAppend
	RecPrepend  = memcached.RecPrepend
	RecCas      = memcached.RecCas
	RecDelete   = memcached.RecDelete
	RecIncr     = memcached.RecIncr
	RecDecr     = memcached.RecDecr
	RecTouch    = memcached.RecTouch
	RecFlushAll = memcached.RecFlushAll
	RecEvict    = memcached.RecEvict
	RecExpire   = memcached.RecExpire
)

// Package memcheck is a deterministic model checker for the full
// memcached stack: it drives randomized workloads through real clients,
// transports and server against the real engine in virtual time,
// records the engine's totally-ordered transition history (see
// memcached/record.go), and replays that history against a plain-map
// reference model. Because every transition carries a global sequence
// number taken under the owning shard lock, the recorded order IS a
// linearization — checking is a single O(n log n) pass (sort by Seq,
// then fold), with no Wing–Gong interleaving search.
package memcheck

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/simnet"
)

// OpCode is one scripted client operation.
type OpCode uint8

// Script operation codes.
const (
	OpSet OpCode = iota + 1
	OpAdd
	OpReplace
	OpAppend
	OpPrepend
	OpCas
	OpGet
	OpMGet
	OpDelete
	OpIncr
	OpDecr
	OpAdvance
	OpFlush
	OpBurst
	// Fleet-mode churn ops (only GenerateFleet emits them; the
	// single-server executor rejects them). Join brings up a fresh
	// server; leave/crash target the Delta'th live member modulo the
	// CURRENT live count, so dropping earlier churn ops during ddmin
	// still yields a runnable script.
	OpJoin
	OpLeave
	OpCrash
)

var opNames = map[OpCode]string{
	OpSet: "set", OpAdd: "add", OpReplace: "replace", OpAppend: "append",
	OpPrepend: "prepend", OpCas: "cas", OpGet: "get", OpMGet: "mget",
	OpDelete: "del", OpIncr: "incr", OpDecr: "decr", OpAdvance: "adv",
	OpFlush: "flush", OpBurst: "burst",
	OpJoin: "join", OpLeave: "leave", OpCrash: "crash",
}

var opByName = func() map[string]OpCode {
	m := make(map[string]OpCode, len(opNames))
	for k, v := range opNames {
		m[v] = k
	}
	return m
}()

// ScriptOp is one operation in a workload script. Which fields matter
// depends on Code; the zero values are valid everywhere else.
type ScriptOp struct {
	Client  int
	Code    OpCode
	Key     string
	Keys    []string // mget
	Value   []byte
	Flags   uint32
	Exptime int64
	Delta   uint64          // incr/decr
	Stale   bool            // cas: present a deliberately stale CAS id
	Advance simnet.Duration // adv
	Window  int             // burst
	Sub     []ScriptOp      // burst sub-ops (set/get/del only)
}

// Script is a replayable workload: the seed that generated it (0 for
// hand-written scripts) plus the operation list.
type Script struct {
	Seed    uint64
	Clients int
	Ops     []ScriptOp
}

// GenConfig tunes Generate.
type GenConfig struct {
	Clients int
	Ops     int
	// Pressure shifts the value-size mix upward so a small-memory store
	// evicts constantly.
	Pressure bool
	// NoBursts drops pipelined bursts AND enables the TTL mix (nonzero
	// exptimes, multi-second advances). The two are coupled on purpose:
	// burst timing is not virtual-time-deterministic (CQ drain batching
	// depends on scheduler interleaving), so expiry boundaries may only
	// appear in scripts whose timestamps are fully reproducible.
	NoBursts bool
}

// Key universes. Regular keys take the full op mix; counter keys take
// incr/decr plus numeric (and occasionally junk) sets; burst keys are
// only ever stored with exptime 0, keeping burst outcomes independent
// of the racy burst timestamps.
var (
	regularKeys = makeKeys("k", 20)
	counterKeys = makeKeys("n", 4)
	burstKeys   = makeKeys("b", 8)
)

func makeKeys(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%02d", prefix, i)
	}
	return out
}

// AllKeys lists every key a generated script can touch (the epilogue
// reads them all).
func AllKeys() []string {
	var out []string
	out = append(out, regularKeys...)
	out = append(out, counterKeys...)
	out = append(out, burstKeys...)
	return out
}

// Generate builds a deterministic random workload from seed.
func Generate(seed uint64, cfg GenConfig) Script {
	if cfg.Clients <= 0 {
		cfg.Clients = 3
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 400
	}
	rng := simnet.NewRand(seed)
	g := &generator{rng: rng, cfg: cfg}
	sc := Script{Seed: seed, Clients: cfg.Clients}
	for i := 0; i < cfg.Ops; i++ {
		sc.Ops = append(sc.Ops, g.next())
	}
	return sc
}

type generator struct {
	rng  *simnet.Rand
	cfg  GenConfig
	vseq int // value uniqueness counter
}

func (g *generator) key() string     { return regularKeys[g.rng.Intn(len(regularKeys))] }
func (g *generator) counter() string { return counterKeys[g.rng.Intn(len(counterKeys))] }
func (g *generator) bkey() string    { return burstKeys[g.rng.Intn(len(burstKeys))] }

// value builds a unique, printable value so any stale read is
// unambiguous in a report.
func (g *generator) value() []byte {
	return g.sizedValue(4 + g.rng.Intn(28))
}

// bigValue (pressure mode, plain sets only) makes every pressure set
// land in ONE large slab class (~101 KB chunks with the 1.25 growth
// factor, 10 per page): eviction is per-shard AND per-class, so a size
// spread across classes would starve the victim scan instead of
// exercising it. Only OpSet carries these: over UCR a plain set is the
// one store with a rendezvous path past the eager threshold.
func (g *generator) bigValue() []byte {
	return g.sizedValue(100000 + g.rng.Intn(1000))
}

func (g *generator) sizedValue(n int) []byte {
	g.vseq++
	s := fmt.Sprintf("v%05d.", g.vseq)
	b := make([]byte, 0, n)
	b = append(b, s...)
	for len(b) < n {
		b = append(b, byte('a'+g.rng.Intn(26)))
	}
	return b
}

// exptime picks an expiry for a store. Zero unless the TTL mix is on;
// the nonzero choices cover short relative TTLs (reachable via adv
// ops), the 30-day relative/absolute cutover, and absolute times.
func (g *generator) exptime() int64 {
	if !g.cfg.NoBursts || g.rng.Intn(10) < 7 {
		return 0
	}
	switch g.rng.Intn(5) {
	case 0:
		return 1
	case 1:
		return 2
	case 2:
		return 5
	case 3:
		return 2592000 // exactly 30 days: still relative
	default:
		return 2592001 // past the cutover: absolute virtual seconds
	}
}

func (g *generator) next() ScriptOp {
	c := g.rng.Intn(g.cfg.Clients)
	w := g.rng.Intn(100)
	switch {
	case w < 18:
		v := g.value()
		if g.cfg.Pressure {
			v = g.bigValue()
		}
		return ScriptOp{Client: c, Code: OpSet, Key: g.key(), Value: v,
			Flags: uint32(g.rng.Intn(1 << 16)), Exptime: g.exptime()}
	case w < 24:
		return ScriptOp{Client: c, Code: OpAdd, Key: g.key(), Value: g.value(),
			Flags: uint32(g.rng.Intn(256)), Exptime: g.exptime()}
	case w < 30:
		return ScriptOp{Client: c, Code: OpReplace, Key: g.key(), Value: g.value(),
			Flags: uint32(g.rng.Intn(256)), Exptime: g.exptime()}
	case w < 35:
		return ScriptOp{Client: c, Code: OpAppend, Key: g.key(), Value: g.value()}
	case w < 39:
		return ScriptOp{Client: c, Code: OpPrepend, Key: g.key(), Value: g.value()}
	case w < 47:
		return ScriptOp{Client: c, Code: OpCas, Key: g.key(), Value: g.value(),
			Flags: uint32(g.rng.Intn(256)), Exptime: g.exptime(), Stale: g.rng.Intn(2) == 0}
	case w < 65:
		// Reads hit the whole keyspace, counters and burst keys included.
		k := g.key()
		if r := g.rng.Intn(10); r < 2 {
			k = g.counter()
		} else if r < 4 {
			k = g.bkey()
		}
		return ScriptOp{Client: c, Code: OpGet, Key: k}
	case w < 71:
		n := 2 + g.rng.Intn(5)
		keys := make([]string, 0, n)
		for len(keys) < n {
			keys = append(keys, g.key())
		}
		return ScriptOp{Client: c, Code: OpMGet, Keys: keys}
	case w < 77:
		k := g.key()
		if g.rng.Intn(5) == 0 {
			k = g.counter()
		}
		return ScriptOp{Client: c, Code: OpDelete, Key: k}
	case w < 82:
		// Counter setup: mostly numeric (sometimes huge, to reach the
		// 2^64−1 wraparound), occasionally junk to exercise the
		// non-numeric CLIENT_ERROR path.
		var v []byte
		switch g.rng.Intn(6) {
		case 0:
			v = []byte("not-a-number")
		case 1:
			v = []byte("18446744073709551615")
		default:
			v = []byte(strconv.Itoa(g.rng.Intn(100000)))
		}
		return ScriptOp{Client: c, Code: OpSet, Key: g.counter(), Value: v}
	case w < 87:
		return ScriptOp{Client: c, Code: OpIncr, Key: g.counter(), Delta: uint64(1 + g.rng.Intn(1000))}
	case w < 90:
		return ScriptOp{Client: c, Code: OpDecr, Key: g.counter(), Delta: uint64(1 + g.rng.Intn(1000))}
	case w < 97:
		d := simnet.Duration(10+g.rng.Intn(5000)) * simnet.Microsecond
		if g.cfg.NoBursts && g.rng.Intn(6) == 0 {
			// Big jumps make short TTLs actually expire mid-script.
			d = simnet.Duration(1+g.rng.Intn(3)) * simnet.Second
		}
		return ScriptOp{Client: c, Code: OpAdvance, Advance: d}
	case w < 98:
		return ScriptOp{Client: c, Code: OpFlush}
	default:
		if g.cfg.NoBursts {
			return ScriptOp{Client: c, Code: OpGet, Key: g.key()}
		}
		return g.burst(c)
	}
}

// FleetGenConfig tunes GenerateFleet.
type FleetGenConfig struct {
	Clients int
	Ops     int
}

// FleetKeys is the fleet-mode key universe: wide enough to spread over
// many owners so churn actually moves keys, narrow enough that every
// key sees repeated traffic (read repair needs a get after a move).
var FleetKeys = makeKeys("f", 32)

// GenerateFleet builds a deterministic fleet workload from seed:
// set/get/del over FleetKeys interleaved with join/leave/crash churn
// and small clock advances. Only ops the fleet client supports appear;
// everything stores with exptime 0 (ownership, not TTL, is under test).
func GenerateFleet(seed uint64, cfg FleetGenConfig) Script {
	if cfg.Clients <= 0 {
		cfg.Clients = 3
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 300
	}
	rng := simnet.NewRand(seed)
	g := &generator{rng: rng, cfg: GenConfig{Clients: cfg.Clients}}
	sc := Script{Seed: seed, Clients: cfg.Clients}
	for i := 0; i < cfg.Ops; i++ {
		c := rng.Intn(cfg.Clients)
		w := rng.Intn(100)
		var op ScriptOp
		fkey := FleetKeys[rng.Intn(len(FleetKeys))]
		switch {
		case w < 30:
			op = ScriptOp{Client: c, Code: OpSet, Key: fkey, Value: g.value(),
				Flags: uint32(rng.Intn(256))}
		case w < 72:
			op = ScriptOp{Client: c, Code: OpGet, Key: fkey}
		case w < 80:
			op = ScriptOp{Client: c, Code: OpDelete, Key: fkey}
		case w < 88:
			op = ScriptOp{Client: c, Code: OpAdvance,
				Advance: simnet.Duration(10+rng.Intn(2000)) * simnet.Microsecond}
		case w < 92:
			op = ScriptOp{Client: c, Code: OpJoin}
		case w < 96:
			op = ScriptOp{Client: c, Code: OpLeave, Delta: uint64(rng.Intn(1 << 16))}
		default:
			op = ScriptOp{Client: c, Code: OpCrash, Delta: uint64(rng.Intn(1 << 16))}
		}
		sc.Ops = append(sc.Ops, op)
	}
	return sc
}

func (g *generator) burst(c int) ScriptOp {
	window := 4 + g.rng.Intn(13)
	n := window + g.rng.Intn(window+1)
	sub := make([]ScriptOp, 0, n)
	for i := 0; i < n; i++ {
		switch g.rng.Intn(4) {
		case 0, 1:
			sub = append(sub, ScriptOp{Code: OpSet, Key: g.bkey(), Value: g.value(),
				Flags: uint32(g.rng.Intn(256))})
		case 2:
			sub = append(sub, ScriptOp{Code: OpGet, Key: g.bkey()})
		default:
			sub = append(sub, ScriptOp{Code: OpDelete, Key: g.bkey()})
		}
	}
	return ScriptOp{Client: c, Code: OpBurst, Window: window, Sub: sub}
}

// FormatScript renders a script in the replayable text form ParseScript
// reads back.
func FormatScript(sc Script) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# memcheck script seed=%d clients=%d ops=%d\n", sc.Seed, sc.Clients, len(sc.Ops))
	for _, op := range sc.Ops {
		b.WriteString(formatOp(op, true))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatOp(op ScriptOp, withClient bool) string {
	var b strings.Builder
	if withClient {
		fmt.Fprintf(&b, "%d ", op.Client)
	}
	b.WriteString(opNames[op.Code])
	switch op.Code {
	case OpSet, OpAdd, OpReplace, OpCas:
		mode := ""
		if op.Code == OpCas {
			mode = " fresh"
			if op.Stale {
				mode = " stale"
			}
		}
		fmt.Fprintf(&b, " %s %d %d%s %s", op.Key, op.Flags, op.Exptime, mode, strconv.Quote(string(op.Value)))
	case OpAppend, OpPrepend:
		fmt.Fprintf(&b, " %s %s", op.Key, strconv.Quote(string(op.Value)))
	case OpGet, OpDelete:
		fmt.Fprintf(&b, " %s", op.Key)
	case OpMGet:
		fmt.Fprintf(&b, " %s", strings.Join(op.Keys, ","))
	case OpIncr, OpDecr:
		fmt.Fprintf(&b, " %s %d", op.Key, op.Delta)
	case OpAdvance:
		fmt.Fprintf(&b, " %d", int64(op.Advance))
	case OpFlush, OpJoin:
	case OpLeave, OpCrash:
		fmt.Fprintf(&b, " %d", op.Delta)
	case OpBurst:
		fmt.Fprintf(&b, " %d", op.Window)
		for i, s := range op.Sub {
			sep := " "
			if i > 0 {
				sep = " ; "
			}
			b.WriteString(sep + formatOp(s, false))
		}
	}
	return b.String()
}

// ParseScript reads the FormatScript form back.
func ParseScript(text string) (Script, error) {
	sc := Script{Clients: 1}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fmt.Sscanf(line, "# memcheck script seed=%d clients=%d", &sc.Seed, &sc.Clients)
			continue
		}
		op, err := parseOpLine(line)
		if err != nil {
			return Script{}, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if op.Client >= sc.Clients {
			sc.Clients = op.Client + 1
		}
		sc.Ops = append(sc.Ops, op)
	}
	return sc, nil
}

func parseOpLine(line string) (ScriptOp, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return ScriptOp{}, fmt.Errorf("short line %q", line)
	}
	client, err := strconv.Atoi(f[0])
	if err != nil {
		return ScriptOp{}, fmt.Errorf("bad client %q", f[0])
	}
	op, err := parseOp(f[1:])
	if err != nil {
		return ScriptOp{}, err
	}
	op.Client = client
	return op, nil
}

func parseOp(f []string) (ScriptOp, error) {
	code, ok := opByName[f[0]]
	if !ok {
		return ScriptOp{}, fmt.Errorf("unknown op %q", f[0])
	}
	op := ScriptOp{Code: code}
	bad := func() (ScriptOp, error) {
		return ScriptOp{}, fmt.Errorf("malformed %s op: %q", f[0], strings.Join(f, " "))
	}
	arg := func(i int) string {
		if i < len(f) {
			return f[i]
		}
		return ""
	}
	switch code {
	case OpSet, OpAdd, OpReplace, OpCas:
		vi := 4
		if code == OpCas {
			op.Stale = arg(4) == "stale"
			vi = 5
		}
		if len(f) <= vi {
			return bad()
		}
		flags, e1 := strconv.ParseUint(arg(2), 10, 32)
		expt, e2 := strconv.ParseInt(arg(3), 10, 64)
		// The value may contain spaces: rejoin the quoted tail.
		val, e3 := strconv.Unquote(strings.Join(f[vi:], " "))
		if e1 != nil || e2 != nil || e3 != nil {
			return bad()
		}
		op.Key, op.Flags, op.Exptime, op.Value = arg(1), uint32(flags), expt, []byte(val)
	case OpAppend, OpPrepend:
		if len(f) <= 2 {
			return bad()
		}
		val, err := strconv.Unquote(strings.Join(f[2:], " "))
		if err != nil {
			return bad()
		}
		op.Key, op.Value = arg(1), []byte(val)
	case OpGet, OpDelete:
		if arg(1) == "" {
			return bad()
		}
		op.Key = arg(1)
	case OpMGet:
		if arg(1) == "" {
			return bad()
		}
		op.Keys = strings.Split(arg(1), ",")
	case OpIncr, OpDecr:
		d, err := strconv.ParseUint(arg(2), 10, 64)
		if err != nil {
			return bad()
		}
		op.Key, op.Delta = arg(1), d
	case OpAdvance:
		d, err := strconv.ParseInt(arg(1), 10, 64)
		if err != nil {
			return bad()
		}
		op.Advance = simnet.Duration(d)
	case OpFlush, OpJoin:
	case OpLeave, OpCrash:
		d, err := strconv.ParseUint(arg(1), 10, 64)
		if err != nil {
			return bad()
		}
		op.Delta = d
	case OpBurst:
		w, err := strconv.Atoi(arg(1))
		if err != nil || len(f) < 3 {
			return bad()
		}
		op.Window = w
		for _, part := range strings.Split(strings.Join(f[2:], " "), " ; ") {
			sub, err := parseOp(strings.Fields(part))
			if err != nil {
				return ScriptOp{}, err
			}
			op.Sub = append(op.Sub, sub)
		}
	}
	return op, nil
}

// sortKeys returns a map's keys sorted (deterministic iteration).
func sortKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package memcheck

import (
	"fmt"
	"strings"

	"repro/internal/memcached"
)

// Result is one memcheck verdict. Violation == nil means the run
// passed; otherwise Shrunk holds a minimal failing script and Report a
// ready-to-print diagnosis with the replay line.
type Result struct {
	Config    Config
	Script    Script
	History   []*memcached.OpRecord
	Obs       []Observation
	Violation *Violation
	Shrunk    *Script
	Report    string

	// Datapath counters for the srq/ud vacuity guards: SRQ demux
	// decisions on the server, and requests/retransmissions on the
	// clients' UD endpoints. BatchedDrains guards the batch-scheduled
	// serving loop the same way: a UCR sweep with pipelined bursts
	// where no worker ever harvested ≥2 completions in one drain was
	// exercising the old request-at-a-time loop, not the batched one.
	SRQDemux      uint64
	UDGets        uint64
	UDRetransmits uint64
	BatchedDrains uint64
	WriteReplies  uint64
}

// Run generates the workload for cfg.Seed, executes it, and checks the
// history. On violation it shrinks the script (shrinkBudget re-runs)
// and formats the report.
func Run(cfg Config) *Result {
	sc := Generate(cfg.Seed, GenConfig{
		Clients: cfg.Clients, Ops: cfg.Ops,
		Pressure: cfg.Pressure, NoBursts: cfg.NoBursts,
	})
	return RunScript(sc, cfg)
}

const shrinkBudget = 80

// RunScript executes a specific script (replay path) and checks it.
func RunScript(sc Script, cfg Config) *Result {
	res := &Result{Config: cfg, Script: sc}
	out, err := execute(sc, cfg)
	if out != nil {
		res.History = out.Records
		res.Obs = out.Obs
		res.SRQDemux = out.SRQDemux
		res.UDGets = out.UDGets
		res.UDRetransmits = out.UDRetransmits
		res.BatchedDrains = out.BatchedDrains
		res.WriteReplies = out.WriteReplies
	}
	res.Violation = verdict(out, err, cfg)
	if res.Violation == nil {
		return res
	}

	fails := func(cand Script) bool {
		o, e := execute(cand, cfg)
		return verdict(o, e, cfg) != nil
	}
	shrunk := Shrink(sc, fails, shrinkBudget)
	res.Shrunk = &shrunk
	res.Report = formatReport(res)
	return res
}

// verdict classifies one execution: harness failure, model divergence,
// or cross-check mismatch (in that order).
func verdict(out *runOutcome, err error, cfg Config) *Violation {
	if err != nil {
		return &Violation{Msg: "harness: " + err.Error()}
	}
	if v := CheckModel(out.Records); v != nil {
		return v
	}
	return CrossCheck(out.Records, out.Obs, cfg.Faults)
}

// FormatHistory renders the recorded history one line per transition.
// withTimes=false omits every virtual-time-derived field — the form two
// runs of the same seed must agree on even when pipelined bursts make
// the exact timestamps scheduler-dependent (the ORDER stays fixed:
// requests are FIFO per connection and ops are sequenced under shard
// locks; only the clock readings wobble).
func FormatHistory(recs []*memcached.OpRecord, withTimes bool) string {
	var b strings.Builder
	for _, r := range recs {
		b.WriteString(formatRecord(r, withTimes))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatRecord(r *memcached.OpRecord, withTimes bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5d %-8s %-5s", r.Seq, r.Kind, r.Key)
	storeClass := false
	switch r.Kind {
	case memcached.RecSet, memcached.RecAdd, memcached.RecReplace,
		memcached.RecAppend, memcached.RecPrepend, memcached.RecCas:
		storeClass = true
	}
	if storeClass {
		fmt.Fprintf(&b, " res=%s", r.Res)
	}
	switch r.Kind {
	case memcached.RecGet, memcached.RecDelete, memcached.RecTouch,
		memcached.RecIncr, memcached.RecDecr:
		fmt.Fprintf(&b, " hit=%v", r.Hit)
	}
	if len(r.Value) > 0 {
		fmt.Fprintf(&b, " val=%s", quoteShort(r.Value))
	}
	if len(r.Arg) > 0 {
		fmt.Fprintf(&b, " arg=%s", quoteShort(r.Arg))
	}
	if len(r.OldValue) > 0 {
		fmt.Fprintf(&b, " old=%s", quoteShort(r.OldValue))
	}
	if storeClass || (r.Kind == memcached.RecGet && r.Hit) {
		fmt.Fprintf(&b, " flags=%d", r.Flags)
	}
	if r.Exptime != 0 {
		fmt.Fprintf(&b, " exptime=%d", r.Exptime)
	}
	if r.CasReq != 0 {
		fmt.Fprintf(&b, " casreq=%d", r.CasReq)
	}
	if r.NewCAS != 0 {
		fmt.Fprintf(&b, " newcas=%d", r.NewCAS)
	}
	if r.OldCAS != 0 {
		fmt.Fprintf(&b, " oldcas=%d", r.OldCAS)
	}
	switch r.Kind {
	case memcached.RecIncr, memcached.RecDecr:
		fmt.Fprintf(&b, " delta=%d num=%d bad=%v oom=%v", r.Delta, r.NewNum, r.Bad, r.OOM)
	}
	if withTimes {
		fmt.Fprintf(&b, " now=%d", int64(r.Now))
		if r.ExpireAt != 0 {
			fmt.Fprintf(&b, " expireAt=%d", int64(r.ExpireAt))
		}
		if r.SetAt != 0 {
			fmt.Fprintf(&b, " setAt=%d", int64(r.SetAt))
		}
		if r.Horizon != 0 {
			fmt.Fprintf(&b, " horizon=%d", int64(r.Horizon))
		}
	}
	return b.String()
}

// quoteShort quotes a value, eliding the middle of long ones (pressure
// values run to 60 KB; reports need the identity prefix, not the bulk).
func quoteShort(v []byte) string {
	const keep = 24
	if len(v) <= 2*keep {
		return fmt.Sprintf("%q", v)
	}
	return fmt.Sprintf("%q..%q(len %d)", v[:keep], v[len(v)-8:], len(v))
}

func formatReport(res *Result) string {
	cfg := res.Config
	var b strings.Builder
	b.WriteString("memcheck: VIOLATION\n")
	fmt.Fprintf(&b, "  seed=%d transport=%s faults=%v pressure=%v nobursts=%v onesided=%v srq=%v ud=%v wrreply=%v clients=%d ops=%d\n",
		cfg.Seed, cfg.Transport, cfg.Faults, cfg.Pressure, cfg.NoBursts, cfg.OneSided, cfg.SRQ, cfg.UD, cfg.WriteReplies, res.Script.Clients, len(res.Script.Ops))
	fmt.Fprintf(&b, "  violation: %s\n", res.Violation.Error())
	replay := fmt.Sprintf("go run ./cmd/mccheck -transport %s -seed %d", cfg.Transport, cfg.Seed)
	if cfg.Faults {
		replay += " -faults"
	}
	if cfg.Pressure {
		replay += " -pressure"
	}
	if cfg.NoBursts {
		replay += " -nobursts"
	}
	if cfg.OneSided {
		replay += " -onesided"
	}
	if cfg.SRQ {
		replay += " -srq"
	}
	if cfg.UD {
		replay += " -ud"
	}
	if cfg.WriteReplies {
		replay += " -wrreply"
	}
	if cfg.Clients != 0 {
		replay += fmt.Sprintf(" -clients %d", cfg.Clients)
	}
	if cfg.Ops != 0 {
		replay += fmt.Sprintf(" -ops %d", cfg.Ops)
	}
	fmt.Fprintf(&b, "  replay: %s\n", replay)
	if res.Shrunk != nil {
		fmt.Fprintf(&b, "  shrunk script (%d ops, from %d; save and replay with -script FILE):\n", len(res.Shrunk.Ops), len(res.Script.Ops))
		for _, line := range strings.Split(strings.TrimRight(FormatScript(*res.Shrunk), "\n"), "\n") {
			b.WriteString("    " + line + "\n")
		}
	}
	if n := len(res.History); n > 0 {
		// Show the window ending just past the offending record (or the
		// tail, for violations not tied to one record).
		end := n
		if res.Violation.Seq != 0 {
			for i, r := range res.History {
				if r.Seq == res.Violation.Seq {
					end = i + 4
					break
				}
			}
			if end > n {
				end = n
			}
		}
		start := end - 20
		if start < 0 {
			start = 0
		}
		fmt.Fprintf(&b, "  history records %d..%d (of %d):\n", start, end-1, n)
		for _, r := range res.History[start:end] {
			b.WriteString("    " + formatRecord(r, true) + "\n")
		}
	}
	return b.String()
}

package memcheck

import (
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mcclient"
	"repro/internal/memcached"
	"repro/internal/simnet"
)

// TestFlushAllWithPipelinedSets races flush_all against a pipelined
// window of in-flight sets, on both transports. The sets commit on
// whichever side of the flush the scheduler lands them — the invariant
// is the horizon rule itself: a key is visible afterwards if and only
// if its last committed set's setAt is at or above the recorded flush
// horizon. The recorder is the oracle; the full history must also pass
// the reference model.
func TestFlushAllWithPipelinedSets(t *testing.T) {
	if memcached.ActiveMutations() != nil {
		t.Skip("store mutations active")
	}
	keys := []string{"fr0", "fr1", "fr2", "fr3", "fr4", "fr5", "fr6", "fr7"}
	for _, tr := range transports {
		t.Run(string(tr), func(t *testing.T) {
			d := cluster.New(cluster.ClusterB(), cluster.Options{
				Servers: 1, ServerWorkers: 2, Stripes: 4, MemoryLimit: 64 << 20,
			})
			defer d.Close()
			cl, err := d.NewClient(tr, mcclient.DefaultBehaviors())
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			var mu sync.Mutex
			var recs []*memcached.OpRecord
			store := d.Server.Store()
			store.SetRecorder(func(r *memcached.OpRecord) {
				mu.Lock()
				recs = append(recs, r)
				mu.Unlock()
			})
			defer store.SetRecorder(nil)

			// Ground layer: every key exists well before the flush.
			for _, k := range keys {
				if err := cl.MC.Set(k, []byte("old."+k), 1, 0); err != nil {
					t.Fatal(err)
				}
			}
			cl.Clock.Advance(2 * simnet.Millisecond)

			// A window of sets with a flush landing mid-window: the first
			// half is sent (and timestamped) below the horizon, the second
			// half above it.
			pr, ok := cl.MC.Transport(0).(mcclient.Pipeliner)
			if !ok {
				t.Fatalf("transport %s cannot pipeline", tr)
			}
			pl := pr.Pipeline(len(keys))
			futs := make([]*mcclient.SetFuture, len(keys))
			for i, k := range keys[:len(keys)/2] {
				futs[i] = pl.StartSet(cl.Clock, k, 2, 0, []byte("new."+k))
			}
			if err := pl.Flush(cl.Clock); err != nil {
				t.Fatal(err)
			}
			cl.Clock.Advance(simnet.Millisecond)
			store.FlushAll(cl.Clock.Now())
			for i, k := range keys[len(keys)/2:] {
				futs[len(keys)/2+i] = pl.StartSet(cl.Clock, k, 2, 0, []byte("new."+k))
			}
			if err := pl.Wait(cl.Clock); err != nil {
				t.Fatal(err)
			}
			for i, f := range futs {
				if res, err := f.Wait(cl.Clock); err != nil || res != memcached.Stored {
					t.Fatalf("pipelined set %s: res=%v err=%v", keys[i], res, err)
				}
			}

			// Oracle: last committed set per key, and the flush horizon,
			// straight from the recorder.
			mu.Lock()
			history := append([]*memcached.OpRecord(nil), recs...)
			mu.Unlock()
			sortRecords(history)
			var horizon simnet.Time
			lastSet := map[string]*memcached.OpRecord{}
			for _, r := range history {
				switch r.Kind {
				case memcached.RecFlushAll:
					horizon = r.Horizon
				case memcached.RecSet:
					if r.Res == memcached.Stored {
						lastSet[r.Key] = r
					}
				}
			}
			if horizon == 0 {
				t.Fatal("no flush record in history")
			}

			survivors, flushed := 0, 0
			for _, k := range keys {
				r := lastSet[k]
				if r == nil {
					t.Fatalf("%s: no committed set recorded", k)
				}
				wantHit := r.SetAt >= horizon
				v, _, _, err := cl.MC.Get(k)
				switch {
				case err == nil && !wantHit:
					t.Errorf("%s: hit after flush but setAt=%d < horizon=%d", k, int64(r.SetAt), int64(horizon))
				case err != nil && wantHit:
					t.Errorf("%s: miss after flush but setAt=%d >= horizon=%d (%v)", k, int64(r.SetAt), int64(horizon), err)
				case err == nil && string(v) != "new."+k:
					t.Errorf("%s: survivor has value %q, want %q", k, v, "new."+k)
				}
				if wantHit {
					survivors++
				} else {
					flushed++
				}
			}
			t.Logf("%s: horizon split the window %d flushed / %d survived", tr, flushed, survivors)
			if flushed == 0 || survivors == 0 {
				t.Errorf("%s: flush did not split the window (%d flushed / %d survived)", tr, flushed, survivors)
			}

			// The whole interleaving must also satisfy the reference model.
			mu.Lock()
			history = append([]*memcached.OpRecord(nil), recs...)
			mu.Unlock()
			sortRecords(history)
			if v := CheckModel(history); v != nil {
				t.Errorf("history fails the model: %s", v.Error())
			}
		})
	}
}

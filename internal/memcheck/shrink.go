package memcheck

// Shrinking: given a failing script, find a small script that still
// fails, by re-running candidates. Three reductions, cheapest first:
// ddmin-style chunk deletion over the op list, burst flattening
// (pipelined window → equivalent blocking ops), and client collapsing
// (everything on client 0). Each candidate costs one full execution, so
// the caller bounds the total with a run budget.

// Shrink reduces sc while fails(candidate) stays true. fails must be
// the full check (execute + model + crosscheck); budget caps how many
// times it may be called.
func Shrink(sc Script, fails func(Script) bool, budget int) Script {
	cur := sc
	spent := 0
	try := func(cand Script) bool {
		if spent >= budget {
			return false
		}
		spent++
		if fails(cand) {
			cur = cand
			return true
		}
		return false
	}

	// ddmin over ops: remove progressively smaller chunks.
	n := 2
	for len(cur.Ops) > 1 && spent < budget {
		chunk := (len(cur.Ops) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur.Ops) && spent < budget; start += chunk {
			end := start + chunk
			if end > len(cur.Ops) {
				end = len(cur.Ops)
			}
			cand := cur
			cand.Ops = append(append([]ScriptOp(nil), cur.Ops[:start]...), cur.Ops[end:]...)
			if len(cand.Ops) == 0 {
				continue
			}
			if try(cand) {
				reduced = true
				break
			}
		}
		switch {
		case reduced:
			if n > 2 {
				n--
			}
		case chunk == 1:
			// Already at single-op granularity and nothing was removable.
			n = len(cur.Ops) + 1
		default:
			n *= 2
		}
		if n > len(cur.Ops) && chunk == 1 {
			break
		}
		if n > len(cur.Ops) {
			n = len(cur.Ops)
		}
	}

	// Burst flattening: a pipelined window that still fails as plain
	// blocking ops makes a much more readable repro.
	for i := 0; i < len(cur.Ops) && spent < budget; i++ {
		op := cur.Ops[i]
		if op.Code != OpBurst {
			continue
		}
		cand := cur
		flat := make([]ScriptOp, 0, len(cur.Ops)+len(op.Sub)-1)
		flat = append(flat, cur.Ops[:i]...)
		for _, sub := range op.Sub {
			sub.Client = op.Client
			flat = append(flat, sub)
		}
		flat = append(flat, cur.Ops[i+1:]...)
		cand.Ops = flat
		try(cand)
	}

	// Client collapsing: single-actor repros read best.
	if cur.Clients > 1 && spent < budget {
		cand := cur
		cand.Clients = 1
		cand.Ops = append([]ScriptOp(nil), cur.Ops...)
		for i := range cand.Ops {
			cand.Ops[i].Client = 0
		}
		try(cand)
	}
	return cur
}

package memcheck

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/mcclient"
	"repro/internal/ring"
	"repro/internal/simnet"
)

// Fleet mode checks the replicated, churn-capable tier: a cluster.Fleet
// under a scripted mix of set/get/del traffic and join/leave/crash
// events, against a reference model that tracks PER-SERVER ownership as
// the ring evolves. The invariant is the relaxed fleet contract: after
// churn quiesces, only the R current owners serve a key, and no stale
// pre-churn value is ever returned. Values MAY be lost when churn
// removes both owners of a key faster than read repair can respropagate
// them — the model predicts exactly that, so a loss the design allows
// is a pass and a loss (or resurrection) it does not is a violation.
//
// Clean runs are checked exactly: every Set/Get/Delete outcome,
// including the read-repair side effect on the primary, is predicted
// bit-for-bit from the model. Lossy runs drop 1% of packets, so any
// op can fail having half-applied; the model then tracks a CANDIDATE
// SET of values per server per key (union-only, "absent" is always a
// candidate) and checks containment: a returned or probed value that
// was never a candidate at any serving owner is a violation — that is
// precisely the "stale pre-churn value" class.

// FleetConfig selects what one fleet memcheck run exercises.
type FleetConfig struct {
	// Transport is the wire the fleet clients use.
	Transport cluster.Transport
	// Seed drives workload generation and (with Faults) the drop pattern.
	Seed uint64
	// Servers is the initial member count (default 4).
	Servers int
	// Clients / Ops size the generated workload (defaults 3 / 300).
	Clients int
	Ops     int
	// Faults turns on a lossy fabric (1% drop) plus client retries.
	Faults bool
}

// FleetResult is one fleet memcheck verdict.
type FleetResult struct {
	Config    FleetConfig
	Script    Script
	Violation *Violation
	Shrunk    *Script
	Report    string

	// Vacuity-guard counters: a sweep where the replication machinery
	// never ran validated nothing.
	Stats   cluster.FleetClientStats // summed over all clients
	Moved   float64                  // cumulative keyspace fraction moved by churn
	Joins   int
	Leaves  int
	Crashes int
}

// RunFleet generates the fleet workload for cfg.Seed, executes it, and
// checks it; on violation the script is shrunk and a report formatted.
func RunFleet(cfg FleetConfig) *FleetResult {
	sc := GenerateFleet(cfg.Seed, FleetGenConfig{Clients: cfg.Clients, Ops: cfg.Ops})
	return RunFleetScript(sc, cfg)
}

// RunFleetScript executes a specific fleet script (replay path).
func RunFleetScript(sc Script, cfg FleetConfig) *FleetResult {
	res := executeFleet(sc, cfg)
	if res.Violation == nil {
		return res
	}
	fails := func(cand Script) bool {
		return executeFleet(cand, cfg).Violation != nil
	}
	shrunk := Shrink(sc, fails, shrinkBudget)
	res.Shrunk = &shrunk
	res.Report = formatFleetReport(res)
	return res
}

// fleetVal is one modeled cache entry (fleet values are small; string
// keys make them usable as map keys for the candidate sets).
type fleetVal struct {
	val   string
	flags uint32
}

// fleetModel is the reference: a ring replica kept in lockstep with the
// live fleet's, plus per-server contents — exact in clean mode,
// candidate sets in lossy mode.
type fleetModel struct {
	lossy    bool
	replicas int
	ring     *ring.Ring
	exact    map[string]map[string]fleetVal       // clean: server → key → value
	cand     map[string]map[string]map[fleetVal]bool // lossy: server → key → candidates
}

func newFleetModel(lossy bool, replicas int, members []string) *fleetModel {
	m := &fleetModel{
		lossy: lossy, replicas: replicas, ring: ring.New(0),
		exact: make(map[string]map[string]fleetVal),
		cand:  make(map[string]map[string]map[fleetVal]bool),
	}
	for _, name := range members {
		m.addServer(name)
	}
	return m
}

func (m *fleetModel) addServer(name string) {
	m.ring.AddServer(name)
	m.exact[name] = make(map[string]fleetVal)
	m.cand[name] = make(map[string]map[fleetVal]bool)
}

func (m *fleetModel) removeServer(name string) {
	m.ring.RemoveServer(name)
	delete(m.exact, name)
	delete(m.cand, name)
}

func (m *fleetModel) owners(key string) []string {
	return m.ring.Owners(key, m.replicas)
}

// addCand records v as a possible value of key at server (lossy mode).
func (m *fleetModel) addCand(server, key string, v fleetVal) {
	ks := m.cand[server]
	if ks == nil {
		return // departed server; nothing to track
	}
	set := ks[key]
	if set == nil {
		set = make(map[fleetVal]bool)
		ks[key] = set
	}
	set[v] = true
}

// isCand reports whether v is a possible value of key at server.
func (m *fleetModel) isCand(server, key string, v fleetVal) bool {
	if ks := m.cand[server]; ks != nil {
		return ks[key][v]
	}
	return false
}

// set applies a fleet write-through to the model.
func (m *fleetModel) set(key string, v fleetVal) {
	for _, o := range m.owners(key) {
		if m.lossy {
			m.addCand(o, key, v)
		} else if s := m.exact[o]; s != nil {
			s[key] = v
		}
	}
}

// get predicts a clean-mode fleet Get: the returned value (hit) or a
// miss, applying the read-repair side effect to the primary.
func (m *fleetModel) get(key string) (fleetVal, bool) {
	owners := m.owners(key)
	if len(owners) == 0 {
		return fleetVal{}, false
	}
	if v, ok := m.exact[owners[0]][key]; ok {
		return v, true
	}
	if len(owners) > 1 {
		if v, ok := m.exact[owners[1]][key]; ok {
			// Replica hit repairs the live primary (store-if-absent; the
			// key is absent there, so it lands).
			m.exact[owners[0]][key] = v
			return v, true
		}
	}
	return fleetVal{}, false
}

// del applies a fleet delete; reports whether any owner had the key.
func (m *fleetModel) del(key string) bool {
	found := false
	for _, o := range m.owners(key) {
		if m.lossy {
			// Union-only: a draining duplicate of an older store can
			// resurrect the value after the delete, so candidates stay.
			if len(m.cand[o][key]) > 0 {
				found = true
			}
			continue
		}
		if _, ok := m.exact[o][key]; ok {
			found = true
			delete(m.exact[o], key)
		}
	}
	return found
}

// executeFleet runs one fleet script against a fresh fleet and checks
// it step by step; the first divergence is recorded as the violation.
func executeFleet(sc Script, cfg FleetConfig) *FleetResult {
	res := &FleetResult{Config: cfg, Script: sc}
	if cfg.Servers <= 0 {
		cfg.Servers = 4
	}

	b := mcclient.DefaultBehaviors()
	opts := cluster.Options{
		ServerWorkers: 2,
		Stripes:       4,
		MemoryLimit:   32 << 20,
	}
	if cfg.Faults {
		opts.Faults = cluster.LossyFaults(1.0, cfg.Seed^0x5eed)
		b.Retries = 3
		b.RetryBackoff = 200 * simnet.Microsecond
		if cfg.Transport == cluster.UCRIB {
			// Same reasoning as the single-server checker: UCR needs a
			// client-side timeout to turn a dropped packet into a retry;
			// socket transports retransmit below the client.
			b.OpTimeout = 4 * simnet.Millisecond
		}
	}
	f, err := cluster.NewFleet(cluster.ClusterB(), cluster.FleetOptions{
		Transport: cfg.Transport,
		Servers:   cfg.Servers,
		Seed:      cfg.Seed,
		Behaviors: b,
		Opts:      opts,
	})
	if err != nil {
		res.Violation = &Violation{Msg: "harness: " + err.Error()}
		return res
	}
	defer f.Close()

	model := newFleetModel(cfg.Faults, f.Replicas(), f.Members())

	nclients := sc.Clients
	if nclients <= 0 {
		nclients = 1
	}
	clients := make([]*cluster.FleetClient, nclients)
	for i := range clients {
		c, err := f.NewClient()
		if err != nil {
			res.Violation = &Violation{Msg: fmt.Sprintf("harness: client %d: %v", i, err)}
			return res
		}
		defer c.Close()
		clients[i] = c
	}

	x := &fleetExecutor{cfg: cfg, f: f, model: model, clients: clients}
	for i, op := range sc.Ops {
		if v := x.step(op); v != nil {
			v.Msg = fmt.Sprintf("op %d (%s): %s", i, formatOp(op, true), v.Msg)
			res.Violation = v
			x.finish(res)
			return res
		}
	}
	if v := x.epilogue(); v != nil {
		res.Violation = v
	}
	x.finish(res)
	return res
}

type fleetExecutor struct {
	cfg     FleetConfig
	f       *cluster.Fleet
	model   *fleetModel
	clients []*cluster.FleetClient
	moved   float64
}

// finish folds the vacuity counters into the result.
func (x *fleetExecutor) finish(res *FleetResult) {
	for _, c := range x.clients {
		res.Stats.Ops += c.Stats.Ops
		res.Stats.PrimaryHits += c.Stats.PrimaryHits
		res.Stats.ReplicaHits += c.Stats.ReplicaHits
		res.Stats.Fallthroughs += c.Stats.Fallthroughs
		res.Stats.Repairs += c.Stats.Repairs
		res.Stats.Downs += c.Stats.Downs
	}
	res.Moved = x.moved
	res.Joins, res.Leaves, res.Crashes = x.f.ChurnCounts()
}

// down reports whether err is a server-down class outcome (tolerable
// only on lossy fabrics).
func fleetDown(err error) bool {
	return errors.Is(err, mcclient.ErrServerDown) || errors.Is(err, mcclient.ErrNoServers)
}

func (x *fleetExecutor) step(op ScriptOp) *Violation {
	c := x.clients[op.Client%len(x.clients)]
	switch op.Code {
	case OpSet:
		v := fleetVal{val: string(op.Value), flags: op.Flags}
		err := c.Set(op.Key, op.Value, op.Flags, 0)
		// Model first in lossy mode regardless of outcome: a failed
		// write-through may still have applied at any owner.
		x.model.set(op.Key, v)
		if err != nil && !(x.cfg.Faults && fleetDown(err)) {
			return &Violation{Msg: fmt.Sprintf("set returned %v", err)}
		}
		return nil
	case OpGet:
		val, flags, err := c.Get(op.Key)
		return x.checkGet(op.Key, val, flags, err)
	case OpDelete:
		found, err := c.Delete(op.Key)
		wantFound := x.model.del(op.Key)
		if err != nil {
			if x.cfg.Faults && fleetDown(err) {
				return nil
			}
			if errors.Is(err, mcclient.ErrCacheMiss) {
				return nil
			}
			return &Violation{Msg: fmt.Sprintf("delete returned %v", err)}
		}
		if !x.cfg.Faults && found != wantFound {
			return &Violation{Msg: fmt.Sprintf("delete found=%v, model says %v", found, wantFound)}
		}
		return nil
	case OpAdvance:
		c.Clock.Advance(op.Advance)
		return nil
	case OpJoin:
		pre := x.model.ring.Clone()
		name := x.f.Join()
		x.model.addServer(name)
		x.moved += x.model.ring.MovedFraction(pre)
		return x.checkRing()
	case OpLeave, OpCrash:
		// Keep at least 2 members so R=2 stays meaningful and a clean
		// run never routes into a dead fleet; the guard is evaluated on
		// the live size, so dropping earlier churn ops during shrinking
		// yields a script that is still runnable.
		members := x.f.Members()
		if len(members) <= 2 {
			return nil
		}
		name := members[int(op.Delta)%len(members)]
		pre := x.model.ring.Clone()
		if op.Code == OpLeave {
			x.f.Leave(name)
		} else {
			x.f.Crash(name)
		}
		x.model.removeServer(name)
		x.moved += x.model.ring.MovedFraction(pre)
		return x.checkRing()
	default:
		return &Violation{Msg: fmt.Sprintf("op %s not supported in fleet mode", opNames[op.Code])}
	}
}

// checkRing asserts the model ring stayed in lockstep with the fleet's
// — a divergence here is a ring bug, not a replication bug.
func (x *fleetExecutor) checkRing() *Violation {
	if !x.model.ring.Equal(x.f.RingSnapshot()) {
		return &Violation{Msg: "model ring diverged from fleet ring after churn"}
	}
	return nil
}

// checkGet validates one fleet Get outcome against the model and
// applies its side effects (read repair).
func (x *fleetExecutor) checkGet(key string, val []byte, flags uint32, err error) *Violation {
	if x.cfg.Faults {
		// Lossy: only value containment is checkable. A hit must return
		// a candidate value of one of the key's current owners; anything
		// else is a stale or foreign value.
		if err != nil {
			if fleetDown(err) || errors.Is(err, mcclient.ErrCacheMiss) {
				return nil
			}
			return &Violation{Msg: fmt.Sprintf("get returned %v", err)}
		}
		got := fleetVal{val: string(val), flags: flags}
		owners := x.model.owners(key)
		for _, o := range owners {
			if x.model.isCand(o, key, got) {
				// Possible read repair: the primary may now hold it.
				if len(owners) > 0 {
					x.model.addCand(owners[0], key, got)
				}
				return nil
			}
		}
		return &Violation{Msg: fmt.Sprintf("get %s returned %q flags=%d — not a candidate value at any current owner (stale?)", key, val, flags)}
	}
	want, hit := x.model.get(key)
	if hit {
		if err != nil {
			return &Violation{Msg: fmt.Sprintf("get %s returned %v, model has %q", key, err, want.val)}
		}
		if string(val) != want.val || flags != want.flags {
			return &Violation{Msg: fmt.Sprintf("get %s returned %q flags=%d, model has %q flags=%d", key, val, flags, want.val, want.flags)}
		}
		return nil
	}
	if !errors.Is(err, mcclient.ErrCacheMiss) {
		return &Violation{Msg: fmt.Sprintf("get %s: model predicts miss, got val=%q err=%v", key, val, err)}
	}
	return nil
}

// epilogue pins down the quiesced state: every fleet key is read once
// through the ring (repairing as designed), then every live server is
// probed directly for every key — only the R current owners may serve
// it, and what they serve must match the model. This is where a write
// routed by a stale ring or a skipped replica write surfaces even when
// the scripted traffic happened to dodge it.
func (x *fleetExecutor) epilogue() *Violation {
	c := x.clients[0]
	for _, k := range FleetKeys {
		val, flags, err := c.Get(k)
		if v := x.checkGet(k, val, flags, err); v != nil {
			v.Msg = "epilogue: " + v.Msg
			return v
		}
	}
	for _, server := range x.f.Members() {
		for _, k := range FleetKeys {
			val, hit, err := c.DirectGet(server, k)
			if err != nil {
				if x.cfg.Faults && fleetDown(err) {
					continue
				}
				return &Violation{Msg: fmt.Sprintf("epilogue: probe %s@%s: %v", k, server, err)}
			}
			if x.cfg.Faults {
				if hit && !x.anyCand(server, k, val) {
					return &Violation{Msg: fmt.Sprintf("epilogue: server %s holds %s=%q — never a candidate there (stale?)", server, k, val)}
				}
				continue
			}
			want, ok := x.model.exact[server][k]
			switch {
			case hit && !ok:
				return &Violation{Msg: fmt.Sprintf("epilogue: server %s serves %s=%q but is not an owner holding it in the model", server, k, val)}
			case !hit && ok:
				return &Violation{Msg: fmt.Sprintf("epilogue: server %s is missing %s (model holds %q)", server, k, want.val)}
			case hit && string(val) != want.val:
				return &Violation{Msg: fmt.Sprintf("epilogue: server %s serves %s=%q, model holds %q", server, k, val, want.val)}
			}
		}
	}
	return nil
}

// anyCand reports whether val (under any flags) is a candidate of key
// at server — probe flags are not compared in lossy mode.
func (x *fleetExecutor) anyCand(server, key string, val []byte) bool {
	for v := range x.model.cand[server][key] {
		if v.val == string(val) {
			return true
		}
	}
	return false
}

func formatFleetReport(res *FleetResult) string {
	cfg := res.Config
	var b strings.Builder
	b.WriteString("memcheck: FLEET VIOLATION\n")
	fmt.Fprintf(&b, "  seed=%d transport=%s faults=%v servers=%d clients=%d ops=%d\n",
		cfg.Seed, cfg.Transport, cfg.Faults, cfg.Servers, res.Script.Clients, len(res.Script.Ops))
	fmt.Fprintf(&b, "  violation: %s\n", res.Violation.Error())
	fmt.Fprintf(&b, "  churn: joins=%d leaves=%d crashes=%d moved=%.4f repairs=%d\n",
		res.Joins, res.Leaves, res.Crashes, res.Moved, res.Stats.Repairs)
	replay := fmt.Sprintf("go run ./cmd/mccheck -fleet -transport %s -seed %d", cfg.Transport, cfg.Seed)
	if cfg.Faults {
		replay += " -faults"
	}
	if cfg.Servers != 0 {
		replay += fmt.Sprintf(" -servers %d", cfg.Servers)
	}
	if cfg.Clients != 0 {
		replay += fmt.Sprintf(" -clients %d", cfg.Clients)
	}
	if cfg.Ops != 0 {
		replay += fmt.Sprintf(" -ops %d", cfg.Ops)
	}
	fmt.Fprintf(&b, "  replay: %s\n", replay)
	if res.Shrunk != nil {
		fmt.Fprintf(&b, "  shrunk script (%d ops, from %d; save and replay with -script FILE):\n", len(res.Shrunk.Ops), len(res.Script.Ops))
		for _, line := range strings.Split(strings.TrimRight(FormatScript(*res.Shrunk), "\n"), "\n") {
			b.WriteString("    " + line + "\n")
		}
	}
	return b.String()
}

package memcheck

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/ring"
)

// Clean fleet sweep: several seeds of churn-heavy traffic must satisfy
// the exact ownership model, and the replication machinery must
// actually run (vacuity: repairs, key movement, churn all nonzero
// somewhere in the sweep).
func TestFleetCheckClean(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	var repairs uint64
	var moved float64
	var churn int
	for _, seed := range seeds {
		res := RunFleet(FleetConfig{Transport: cluster.UCRIB, Seed: seed})
		if res.Violation != nil {
			t.Fatalf("seed %d: %s\n%s", seed, res.Violation.Error(), res.Report)
		}
		repairs += res.Stats.Repairs
		moved += res.Moved
		churn += res.Joins + res.Leaves + res.Crashes
	}
	if repairs == 0 {
		t.Fatal("vacuity: no read repair ran in the whole sweep")
	}
	if moved <= 0 {
		t.Fatal("vacuity: churn moved no keyspace")
	}
	if churn == 0 {
		t.Fatal("vacuity: no churn events ran")
	}
}

// Lossy fleet sweep: 1% drop with retries; the possibilistic model must
// hold (no stale or foreign value is ever served).
func TestFleetCheckLossy(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		res := RunFleet(FleetConfig{Transport: cluster.UCRIB, Seed: seed, Faults: true})
		if res.Violation != nil {
			t.Fatalf("seed %d: %s\n%s", seed, res.Violation.Error(), res.Report)
		}
	}
}

// Socket transport sanity: the fleet checker is transport-generic.
func TestFleetCheckIPoIB(t *testing.T) {
	res := RunFleet(FleetConfig{Transport: cluster.IPoIB, Seed: 7})
	if res.Violation != nil {
		t.Fatalf("%s\n%s", res.Violation.Error(), res.Report)
	}
}

// The fleet script grammar round-trips through format/parse.
func TestFleetScriptRoundTrip(t *testing.T) {
	sc := GenerateFleet(42, FleetGenConfig{})
	text := FormatScript(sc)
	back, err := ParseScript(text)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	if FormatScript(back) != text {
		t.Fatal("fleet script did not round-trip")
	}
	var churn int
	for _, op := range sc.Ops {
		switch op.Code {
		case OpJoin, OpLeave, OpCrash:
			churn++
		}
	}
	if churn == 0 {
		t.Fatal("generated fleet script has no churn ops")
	}
}

// runMutated flips one seeded-mutation switch for the duration of fn.
func runMutated(t *testing.T, flag *bool, fn func()) {
	t.Helper()
	*flag = true
	defer func() { *flag = false }()
	fn()
}

// mut_ring_stale: clients route by a construction-time ring snapshot.
// The checker must catch it on some seed and shrink the script to a
// replayable repro.
func TestFleetCatchesMutRingStale(t *testing.T) {
	runMutated(t, &ring.MutRingStale, func() {
		caught := false
		for seed := uint64(1); seed <= 6 && !caught; seed++ {
			res := RunFleet(FleetConfig{Transport: cluster.UCRIB, Seed: seed})
			if res.Violation == nil {
				continue
			}
			caught = true
			if res.Shrunk == nil || len(res.Shrunk.Ops) == 0 {
				t.Fatalf("violation not shrunk: %s", res.Violation.Error())
			}
			if len(res.Shrunk.Ops) >= len(res.Script.Ops) {
				t.Fatalf("shrink made no progress: %d -> %d ops",
					len(res.Script.Ops), len(res.Shrunk.Ops))
			}
			if !strings.Contains(res.Report, "-fleet") {
				t.Fatalf("report lacks fleet replay line:\n%s", res.Report)
			}
			// The shrunk script must still fail when replayed.
			rep := RunFleetScript(*res.Shrunk, res.Config)
			if rep.Violation == nil {
				t.Fatal("shrunk script no longer fails on replay")
			}
		}
		if !caught {
			t.Fatal("mut_ring_stale survived 6 seeds")
		}
	})
}

// mut_replica_skip: the write-through drops the replica copy. Caught by
// the epilogue probes (the replica misses a key the model says it
// holds) or by a get after the primary departs.
func TestFleetCatchesMutReplicaSkip(t *testing.T) {
	runMutated(t, &ring.MutReplicaSkip, func() {
		caught := false
		for seed := uint64(1); seed <= 6 && !caught; seed++ {
			res := RunFleet(FleetConfig{Transport: cluster.UCRIB, Seed: seed})
			if res.Violation == nil {
				continue
			}
			caught = true
			if res.Shrunk == nil || len(res.Shrunk.Ops) == 0 {
				t.Fatalf("violation not shrunk: %s", res.Violation.Error())
			}
			rep := RunFleetScript(*res.Shrunk, res.Config)
			if rep.Violation == nil {
				t.Fatal("shrunk script no longer fails on replay")
			}
		}
		if !caught {
			t.Fatal("mut_replica_skip survived 6 seeds")
		}
	})
}
